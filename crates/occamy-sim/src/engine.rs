//! The event-execution engine: every event handler of the simulation,
//! written as free functions generic over an event [`Env`]ironment.
//!
//! The serial world and the parallel domain executor (`crate::par`) run
//! the *same* handler code. What differs is where scheduled events go
//! and how a global component id maps to a storage index:
//!
//! - In a serial run the environment is the [`EventQueue`] itself:
//!   pushes assign the next global sequence number immediately and
//!   every id *is* its storage index (identity translation).
//! - In a parallel run the environment is a per-domain queue: pushes
//!   are staged in a log (their global sequence numbers are assigned
//!   later, by the inter-domain merge, in exactly the order a serial
//!   run would have assigned them), and ids translate through the
//!   domain's local index maps.
//!
//! Both environments are zero-cost at the call sites: `execute_event`
//! is monomorphized per `Env`, so the serial instantiation compiles to
//! the same direct calls the pre-split `World::execute` made — the
//! tracked `perf_transport` baseline measures this path.
//!
//! [`Ctx`] bundles the mutable world state a handler touches (hosts,
//! switches, flow halves, metrics, …). The flow state is passed as
//! three separate slices because ownership differs per half in a
//! parallel run: `hot`/`cold` belong to the sender's domain, `rx` to
//! the receiver's (see `crate::transport`).

use crate::cbr::CbrSource;
use crate::crosspoint::encode_hop;
use crate::event::{Event, EventQueue, NodeId, PacketId};
use crate::faults::{FaultKind, FaultSpec};
use crate::host::Host;
use crate::metrics::Metrics;
use crate::packet::{FlowId, Packet, PacketKind};
use crate::switch::Switch;
use crate::time::{ps_to_ns, tx_time_ps, Ps, NS};
use crate::transport::{FlowCold, FlowHot, FlowRx, TransportConsts};
use crate::world::SamplerSpec;
use crate::SimConfig;
use occamy_core::{BufferManager, DropReason, Verdict};

/// The event environment: where handlers schedule events, redeem
/// interned packets and translate global component ids into storage
/// indices. See the module doc for the two implementations.
pub(crate) trait Env {
    /// Schedules `ev` at absolute time `at`.
    fn push(&mut self, at: Ps, ev: Event);
    /// Schedules a timer event (see [`EventQueue::push_timer`]).
    fn push_timer(&mut self, at: Ps, ev: Event);
    /// Interns `pkt` and schedules its arrival at `node`.
    fn push_arrival(&mut self, at: Ps, node: NodeId, pkt: Packet);
    /// Redeems an [`Event::Arrive`] packet handle.
    fn take_packet(&mut self, id: PacketId) -> Packet;
    /// Storage index of host `h`.
    fn host_idx(&self, h: u32) -> usize;
    /// Storage index of switch `s`.
    fn switch_idx(&self, s: u32) -> usize;
    /// Storage index of flow `f`'s hot/cold (sender) halves.
    fn flow_idx(&self, f: FlowId) -> usize;
    /// Storage index of flow `f`'s rx (receiver) half.
    fn rx_idx(&self, f: FlowId) -> usize;
    /// Storage index of CBR source `c`.
    fn cbr_idx(&self, c: u32) -> usize;
}

/// The serial environment: pushes go straight to the global queue and
/// every id is its own storage index.
impl Env for EventQueue {
    #[inline]
    fn push(&mut self, at: Ps, ev: Event) {
        EventQueue::push(self, at, ev);
    }

    #[inline]
    fn push_timer(&mut self, at: Ps, ev: Event) {
        EventQueue::push_timer(self, at, ev);
    }

    #[inline]
    fn push_arrival(&mut self, at: Ps, node: NodeId, pkt: Packet) {
        EventQueue::push_arrival(self, at, node, pkt);
    }

    #[inline]
    fn take_packet(&mut self, id: PacketId) -> Packet {
        EventQueue::take_packet(self, id)
    }

    #[inline]
    fn host_idx(&self, h: u32) -> usize {
        h as usize
    }

    #[inline]
    fn switch_idx(&self, s: u32) -> usize {
        s as usize
    }

    #[inline]
    fn flow_idx(&self, f: FlowId) -> usize {
        f as usize
    }

    #[inline]
    fn rx_idx(&self, f: FlowId) -> usize {
        f as usize
    }

    #[inline]
    fn cbr_idx(&self, c: u32) -> usize {
        c as usize
    }
}

/// The mutable world state handlers operate on. In a serial run every
/// slice is the world's full component array; in a parallel run each
/// domain passes its owned subset (plus its own [`Metrics`], merged
/// deterministically afterwards).
pub(crate) struct Ctx<'a> {
    /// Current simulation time (updated per executed event).
    pub now: Ps,
    /// Global configuration.
    pub cfg: &'a SimConfig,
    /// Cached transport constants.
    pub consts: &'a TransportConsts,
    /// Hosts owned by this environment.
    pub hosts: &'a mut [Host],
    /// Switches owned by this environment.
    pub switches: &'a mut [Switch],
    /// Sender hot halves owned by this environment.
    pub hot: &'a mut [FlowHot],
    /// Sender cold halves owned by this environment.
    pub cold: &'a mut [FlowCold],
    /// Receiver halves owned by this environment.
    pub rx: &'a mut [FlowRx],
    /// CBR sources owned by this environment.
    pub cbrs: &'a mut [CbrSource],
    /// Registered queue samplers (serial runs only; a world with
    /// samplers never takes the parallel path).
    pub samplers: &'a [SamplerSpec],
    /// The world's immutable fault table (`Event::Fault` payloads
    /// index into it).
    pub faults: &'a [FaultSpec],
    /// Metric sink (per-domain in parallel runs).
    pub metrics: &'a mut Metrics,
}

/// Executes one event at time `t`.
#[inline]
pub(crate) fn execute_event<E: Env>(ctx: &mut Ctx<'_>, env: &mut E, t: Ps, ev: Event) {
    debug_assert!(t >= ctx.now, "time went backwards");
    ctx.now = t;
    ctx.metrics.events_processed += 1;
    match ev {
        Event::Arrive { node, pkt } => {
            let pkt = env.take_packet(pkt);
            match node {
                NodeId::Host(h) => host_rx(ctx, env, h, pkt),
                NodeId::Switch(s) => switch_rx(ctx, env, s, pkt),
            }
        }
        Event::PortFree { switch, port } => {
            let ls = env.switch_idx(switch);
            let port = port as usize;
            ctx.switches[ls].ports[port].tx_busy = false;
            pump_port(
                &mut ctx.switches[ls],
                env,
                ctx.cfg.cell_bytes,
                t,
                switch,
                port,
            );
        }
        Event::HostTxFree { host } => {
            let lh = env.host_idx(host);
            ctx.hosts[lh].tx_busy = false;
            host_pump(ctx, env, host);
        }
        Event::ExpelRetry { switch, partition } => {
            let ls = env.switch_idx(switch);
            let pa = partition as usize;
            ctx.switches[ls].partitions[pa].expel_armed = false;
            try_expel_in(
                &mut ctx.switches[ls],
                env,
                ctx.metrics,
                ctx.cfg.cell_bytes,
                t,
                switch,
                pa,
            );
        }
        Event::Rto { flow } => rto_fire(ctx, env, flow),
        Event::FlowStart { flow } => {
            let i = env.flow_idx(flow);
            ctx.hot[i].set_started(true);
            let gh = ctx.hot[i].src;
            let lh = env.host_idx(gh);
            if !ctx.hosts[lh].alive {
                // A flow starting on a dead host is born killed; it
                // resumes (and recovers) if the host rejoins.
                ctx.hot[i].kill();
                ctx.cold[i].first_interrupt_ps.get_or_insert(t);
                return;
            }
            // Host ready queues hold *storage* indices into the hot
            // slice (identical to flow ids in a serial run), so the
            // host can index its flows without an id translation.
            ctx.hosts[lh].mark_ready(ctx.hot, i as FlowId);
            host_pump(ctx, env, gh);
        }
        Event::CbrEmit { source } => cbr_emit(ctx, env, source),
        Event::Sample { sampler } => sample(ctx, env, sampler),
        Event::Fault { fault } => fault_fire(ctx, env, fault),
    }
}

// -------------------------------------------------------------------
// Hosts
// -------------------------------------------------------------------

fn host_rx<E: Env>(ctx: &mut Ctx<'_>, env: &mut E, gh: u32, pkt: Packet) {
    if !ctx.hosts[env.host_idx(gh)].alive {
        // Fault injection: a dead host receives nothing — data
        // addressed to it and ACKs returning to its flows both vanish.
        ctx.metrics.fault_drops += 1;
        return;
    }
    match pkt.kind {
        PacketKind::Ack => {
            let f = pkt.flow;
            let i = env.flow_idx(f);
            let completed = ctx.hot[i].on_ack(
                &mut ctx.cold[i],
                pkt.ack_seq,
                pkt.ece,
                pkt.ts,
                ctx.now,
                ctx.consts,
            );
            if !completed {
                arm_rto(ctx, env, f);
                if ctx.hot[i].can_send() {
                    let lh = env.host_idx(gh);
                    ctx.hosts[lh].mark_ready(ctx.hot, i as FlowId);
                    host_pump(ctx, env, gh);
                }
            }
        }
        PacketKind::Data => {
            ctx.metrics.delivered_pkts += 1;
            ctx.metrics.delivered_bytes += pkt.len as u64;
            let r = env.rx_idx(pkt.flow);
            let ack_seq = ctx.rx[r].on_data(pkt.seq, pkt.len as u64);
            // `next_segment` stamps `pkt.src` with the flow's sender, so
            // the ACK can address it without reading the sender's flow
            // state (which another domain may own).
            let ack = Packet::ack(pkt.flow, gh, pkt.src, ack_seq, pkt.ce, pkt.prio, pkt.ts);
            let lh = env.host_idx(gh);
            ctx.hosts[lh].ack_queue.push_back(ack);
            host_pump(ctx, env, gh);
        }
        PacketKind::Raw => {
            let c = &mut ctx.metrics.cbr[pkt.flow as usize];
            c.rcvd_pkts += 1;
            c.rcvd_bytes += pkt.len as u64;
            ctx.metrics.delivered_pkts += 1;
            ctx.metrics.delivered_bytes += pkt.len as u64;
        }
    }
}

fn host_pump<E: Env>(ctx: &mut Ctx<'_>, env: &mut E, gh: u32) {
    let lh = env.host_idx(gh);
    if ctx.hosts[lh].tx_busy {
        return;
    }
    let now = ctx.now;
    let Some(pkt) = ctx.hosts[lh].next_packet(ctx.hot, now, ctx.consts) else {
        return;
    };
    if pkt.kind == PacketKind::Data {
        arm_rto(ctx, env, pkt.flow);
    }
    if pkt.kind == PacketKind::Raw {
        let c = &mut ctx.metrics.cbr[pkt.flow as usize];
        c.sent_pkts += 1;
        c.sent_bytes += pkt.len as u64;
    }
    let host = &mut ctx.hosts[lh];
    let link = host.link;
    let ser = tx_time_ps(pkt.wire_bytes(), link.rate_bps);
    host.tx_busy = true;
    env.push(now + ser, Event::HostTxFree { host: gh });
    let mut pkt = pkt;
    pkt.last_hop = encode_hop(NodeId::Host(gh));
    env.push_arrival(
        now + ser + link.prop_ps,
        NodeId::switch(link.to_switch),
        pkt,
    );
}

fn arm_rto<E: Env>(ctx: &mut Ctx<'_>, env: &mut E, flow: FlowId) {
    let f = &mut ctx.hot[env.flow_idx(flow)];
    if !f.outstanding() {
        return;
    }
    let deadline = ctx.now + f.timer_delay(ctx.consts);
    f.rto_deadline = deadline;
    if !f.timer_armed() {
        f.set_timer_armed(true);
        // Timers live on the wheel, not the packet heap.
        env.push_timer(deadline, Event::Rto { flow });
    }
}

fn rto_fire<E: Env>(ctx: &mut Ctx<'_>, env: &mut E, flow: FlowId) {
    let i = env.flow_idx(flow);
    let f = &mut ctx.hot[i];
    f.set_timer_armed(false);
    if f.done() || f.killed() || !f.outstanding() {
        return;
    }
    if ctx.now < f.rto_deadline {
        // Deadline was pushed forward by ACK activity: resleep.
        f.set_timer_armed(true);
        let at = f.rto_deadline;
        env.push_timer(at, Event::Rto { flow });
        return;
    }
    // Tail-loss probe first (no congestion-state change), full RTO
    // once the probe budget is exhausted. A full RTO marks the flow
    // interrupted for recovery-time accounting (first interrupt only).
    if ctx.hot[i].on_timer(&mut ctx.cold[i], ctx.consts) {
        let now = ctx.now;
        ctx.cold[i].first_interrupt_ps.get_or_insert(now);
    }
    arm_rto(ctx, env, flow);
    let gh = ctx.hot[i].src;
    let lh = env.host_idx(gh);
    ctx.hosts[lh].mark_ready(ctx.hot, i as FlowId);
    host_pump(ctx, env, gh);
}

fn cbr_emit<E: Env>(ctx: &mut Ctx<'_>, env: &mut E, source: u32) {
    let now = ctx.now;
    let li = env.cbr_idx(source);
    let src = &mut ctx.cbrs[li];
    if !src.active(now) {
        return;
    }
    let gh = src.host as u32;
    let lh = env.host_idx(gh);
    if ctx.hosts[lh].alive {
        let pkt = ctx.cbrs[li].emit(now);
        ctx.hosts[lh].cbr_queue.push_back(pkt);
        host_pump(ctx, env, gh);
    }
    // A dead host skips the emission but keeps its emit clock running,
    // so the source resumes on schedule when the host rejoins.
    let src = &ctx.cbrs[li];
    let next = now + src.emit_interval();
    if src.active(next) {
        env.push(next, Event::CbrEmit { source });
    }
}

// -------------------------------------------------------------------
// Switches
// -------------------------------------------------------------------
//
// The switch-side handlers borrow their switch exactly once per event
// and thread it through free helper functions; the old
// `self.switches[s]` re-borrow per sub-step showed up in profiles.

fn switch_rx<E: Env>(ctx: &mut Ctx<'_>, env: &mut E, gs: u32, mut pkt: Packet) {
    let now = ctx.now;
    let now_ns = ps_to_ns(now);
    let ecn_k = ctx.cfg.ecn_k_bytes;
    let cell = ctx.cfg.cell_bytes;
    let ls = env.switch_idx(gs);
    let sw = &mut ctx.switches[ls];
    // Fault-free fast path: only a switch with a downed link pays for
    // the enabled-port scan.
    let port = if sw.n_disabled == 0 {
        sw.routing.port_for(pkt.dst as usize, pkt.flow)
    } else {
        match sw
            .routing
            .port_for_enabled(pkt.dst as usize, pkt.flow, &sw.disabled_ports)
        {
            Some(p) => p,
            None => {
                // Every path to the destination is down (e.g. an edge
                // down-link): the packet vanishes on this hop.
                ctx.metrics.fault_drops += 1;
                return;
            }
        }
    };
    if sw.xp.is_some() {
        // Crosspoint-queued switch: a parallel data path with no shared
        // buffer, no admission policy and no class queues.
        xp_rx(sw, env, ctx.metrics, ecn_k, now, gs, port, pkt);
        return;
    }
    let class = (pkt.prio as usize).min(sw.classes - 1);
    let pa = sw.port_partition[port];
    let qidx = sw.queue_index(port, class);
    let wire = pkt.wire_bytes();
    if sw.draining {
        // Drain window: admission refused while the ports empty the
        // buffer through the normal dequeue path.
        record_fault_drop_in(sw, ctx.metrics, pa, now_ns);
        return;
    }
    let part = &mut sw.partitions[pa];

    match part.bm.admit(qidx, wire, &part.state) {
        Verdict::Accept => {
            enqueue_in(sw, pa, port, class, qidx, pkt, ecn_k, now_ns);
            pump_port(sw, env, cell, now, gs, port);
            if sw.partitions[pa].reactive {
                try_expel_in(sw, env, ctx.metrics, cell, now, gs, pa);
            }
        }
        Verdict::Evict => {
            // Pushout: synchronously evict from the longest queue
            // until the newcomer fits (paper §2.2).
            while sw.partitions[pa].state.free() < wire {
                let part = &mut sw.partitions[pa];
                let Some(v) = part.bm.select_victim(&part.state) else {
                    break;
                };
                if !head_drop_in(sw, pa, v, now_ns) {
                    break;
                }
                ctx.metrics.drops.pushout_evictions += 1;
            }
            if sw.partitions[pa].state.free() >= wire {
                enqueue_in(sw, pa, port, class, qidx, pkt, ecn_k, now_ns);
                pump_port(sw, env, cell, now, gs, port);
            } else {
                record_drop_in(sw, ctx.metrics, pa, now_ns, false);
            }
        }
        Verdict::Drop(reason) => {
            let threshold = reason == DropReason::OverThreshold;
            record_drop_in(sw, ctx.metrics, pa, now_ns, threshold);
            if sw.partitions[pa].reactive {
                try_expel_in(sw, env, ctx.metrics, cell, now, gs, pa);
            }
            let _ = &mut pkt; // dropped
        }
    }
}

fn sample<E: Env>(ctx: &mut Ctx<'_>, env: &mut E, sampler: u32) {
    let SamplerSpec {
        switch,
        partition,
        interval,
        until,
    } = ctx.samplers[sampler as usize];
    let ls = env.switch_idx(switch as u32);
    let part = &ctx.switches[ls].partitions[partition];
    ctx.metrics.queue_samples.record(
        ctx.now,
        switch,
        partition,
        part.state.iter().map(|(_, l)| l),
        (0..part.state.num_queues()).map(|q| part.bm.threshold(q, &part.state)),
    );
    if ctx.now + interval <= until {
        env.push(ctx.now + interval, Event::Sample { sampler });
    }
}

/// Enqueues an admitted packet into its partition and port queue,
/// applying DCTCP CE marking.
#[allow(clippy::too_many_arguments)]
fn enqueue_in(
    sw: &mut Switch,
    pa: usize,
    port: usize,
    class: usize,
    qidx: usize,
    mut pkt: Packet,
    ecn_k: u64,
    now_ns: u64,
) {
    let wire = pkt.wire_bytes();
    let part = &mut sw.partitions[pa];
    part.state
        .enqueue(qidx, wire)
        .expect("BM admitted beyond capacity");
    part.bm.on_enqueue(qidx, wire, now_ns, &part.state);
    let qlen = part.state.queue_len(qidx);
    sw.write_rate.record(wire, now_ns);
    // DCTCP marking: CE when the instantaneous queue exceeds K.
    if pkt.kind == PacketKind::Data && qlen > ecn_k {
        pkt.ce = true;
    }
    sw.ports[port].queues[class].push_back(pkt);
}

/// Records a refused arrival with its utilization context.
fn record_drop_in(sw: &Switch, metrics: &mut Metrics, pa: usize, now_ns: u64, threshold: bool) {
    let part = &sw.partitions[pa];
    let util = part.state.total() as f64 / part.state.capacity() as f64;
    let membw = sw.membw_util(now_ns);
    metrics.record_drop(threshold, util, membw);
}

/// Records a fault-caused drop at a switch buffer (drain refusal,
/// link-down flush) with the same utilization context.
fn record_fault_drop_in(sw: &Switch, metrics: &mut Metrics, pa: usize, now_ns: u64) {
    let part = &sw.partitions[pa];
    let util = part.state.total() as f64 / part.state.capacity() as f64;
    let membw = sw.membw_util(now_ns);
    metrics.record_fault_drop(util, membw);
}

/// Removes the head packet of partition-local queue `qidx` without
/// transmitting it. Returns `false` if the queue was empty.
fn head_drop_in(sw: &mut Switch, pa: usize, qidx: usize, now_ns: u64) -> bool {
    let (port, class) = sw.queue_location(pa, qidx);
    let Some(pkt) = sw.ports[port].queues[class].pop_front() else {
        return false;
    };
    let wire = pkt.wire_bytes();
    let part = &mut sw.partitions[pa];
    part.state
        .dequeue(qidx, wire)
        .expect("queue accounting out of sync");
    part.bm.on_dequeue(qidx, wire, now_ns, &part.state);
    // A head drop costs PD/cell-pointer bandwidth, which the token
    // bucket charges, but never touches the cell data memory, so the
    // read-rate estimator (data path) is not updated (paper §3.2).
    true
}

/// Crosspoint-switch arrival: the packet's previous-hop stamp selects
/// the input, the routed output selects the column, and the packet
/// tail-drops against its own crosspoint buffer only.
#[allow(clippy::too_many_arguments)]
fn xp_rx<E: Env>(
    sw: &mut Switch,
    env: &mut E,
    metrics: &mut Metrics,
    ecn_k: u64,
    now: Ps,
    gs: u32,
    port: usize,
    mut pkt: Packet,
) {
    let now_ns = ps_to_ns(now);
    let membw = sw.membw_util(now_ns);
    if sw.draining {
        let xp = sw.xp.as_ref().expect("xp_rx on a shared-memory switch");
        metrics.record_fault_drop(xp.util(), membw);
        return;
    }
    let wire = pkt.wire_bytes();
    let xp = sw.xp.as_mut().expect("xp_rx on a shared-memory switch");
    let inp = xp
        .input_for(pkt.last_hop)
        .expect("packet arrived at a crosspoint switch from an unknown ingress");
    let idx = xp.xp(port, inp);
    if xp.occ[idx] + wire > xp.cap {
        // The dedicated crosspoint is full — the CQ analog of a
        // buffer-full tail drop (no threshold exists to exceed).
        metrics.record_drop(false, xp.util(), membw);
        return;
    }
    xp.occ[idx] += wire;
    xp.out_occ[port] += wire;
    xp.total += wire;
    // DCTCP marking on the output column: the sum over the column's
    // crosspoints is the CQ analog of the output queue length.
    if pkt.kind == PacketKind::Data && xp.out_occ[port] > ecn_k {
        pkt.ce = true;
    }
    xp.queues[idx].push_back(pkt);
    sw.write_rate.record(wire, now_ns);
    xp_pump_port(sw, env, now, gs, port);
}

/// Crosspoint-switch transmit: the output's crosspoint scheduler picks
/// an input, the head packet leaves, and the next hop is stamped.
fn xp_pump_port<E: Env>(sw: &mut Switch, env: &mut E, now: Ps, gs: u32, port: usize) {
    if sw.ports[port].tx_busy {
        return;
    }
    let now_ns = ps_to_ns(now);
    let xp = sw
        .xp
        .as_mut()
        .expect("xp_pump_port on a shared-memory switch");
    let Some(inp) = xp.pick(port) else {
        return;
    };
    let idx = xp.xp(port, inp);
    let mut pkt = xp.queues[idx]
        .pop_front()
        .expect("crosspoint scheduler picked an empty buffer");
    let wire = pkt.wire_bytes();
    xp.occ[idx] -= wire;
    xp.out_occ[port] -= wire;
    xp.total -= wire;
    sw.read_rate.record(wire, now_ns);
    let p = &mut sw.ports[port];
    let link = p.link;
    p.tx_busy = true;
    let ser = tx_time_ps(wire, link.rate_bps);
    env.push(
        now + ser,
        Event::PortFree {
            switch: gs,
            port: port as u32,
        },
    );
    pkt.last_hop = encode_hop(NodeId::Switch(gs));
    env.push_arrival(now + ser + link.prop_ps, link.to, pkt);
}

/// Dequeues and transmits the scheduler's pick on an idle egress port.
/// `gs` is the switch's global id (event payloads always carry global
/// ids); `sw` is its already-resolved storage slot.
fn pump_port<E: Env>(sw: &mut Switch, env: &mut E, cell: u64, now: Ps, gs: u32, port: usize) {
    if sw.xp.is_some() {
        return xp_pump_port(sw, env, now, gs, port);
    }
    if sw.ports[port].tx_busy {
        return;
    }
    let now_ns = ps_to_ns(now);
    let p = &mut sw.ports[port];
    let Some(class) = p.sched.pick(&p.queues) else {
        return;
    };
    let mut pkt = p.queues[class]
        .pop_front()
        .expect("scheduler picked an empty queue");
    let wire = pkt.wire_bytes();
    let pa = sw.port_partition[port];
    let qidx = sw.queue_index(port, class);
    let part = &mut sw.partitions[pa];
    part.state
        .dequeue(qidx, wire)
        .expect("queue accounting out of sync");
    part.bm.on_dequeue(qidx, wire, now_ns, &part.state);
    // TX has absolute priority on memory bandwidth: it may drive the
    // expulsion token balance negative (fixed-priority arbiter, §4.3).
    part.tb.force_take(wire.div_ceil(cell) as f64, now_ns);
    sw.read_rate.record(wire, now_ns);
    let p = &mut sw.ports[port];
    let link = p.link;
    p.tx_busy = true;
    let ser = tx_time_ps(wire, link.rate_bps);
    env.push(
        now + ser,
        Event::PortFree {
            switch: gs,
            port: port as u32,
        },
    );
    pkt.last_hop = encode_hop(NodeId::Switch(gs));
    env.push_arrival(now + ser + link.prop_ps, link.to, pkt);
}

/// Occamy's reactive expulsion loop over one partition.
fn try_expel_in<E: Env>(
    sw: &mut Switch,
    env: &mut E,
    metrics: &mut Metrics,
    cell: u64,
    now: Ps,
    gs: u32,
    pa: usize,
) {
    if !sw.partitions[pa].reactive {
        return;
    }
    let now_ns = ps_to_ns(now);
    loop {
        let part = &mut sw.partitions[pa];
        let Some(v) = part.bm.select_victim(&part.state) else {
            return;
        };
        // Cost of expelling the head packet, in cells.
        let (port, class) = sw.queue_location(pa, v);
        let Some(head_wire) = sw.ports[port].queues[class].front().map(|p| p.wire_bytes()) else {
            return;
        };
        let cells = head_wire.div_ceil(cell) as f64;
        let part = &mut sw.partitions[pa];
        if part.tb.try_take(cells, now_ns) {
            head_drop_in(sw, pa, v, now_ns);
            metrics.drops.head_drops += 1;
        } else {
            // Not enough redundant bandwidth now: retry once the
            // bucket has refilled enough for this packet. A `None`
            // means the request can never be satisfied (zero-rate
            // ablation or a cap below one packet): leave disarmed and
            // let the next enqueue re-evaluate.
            if !part.expel_armed {
                if let Some(wait_ns) = part.tb.time_until(cells, now_ns) {
                    part.expel_armed = true;
                    env.push(
                        now.saturating_add(wait_ns.max(1).saturating_mul(NS)),
                        Event::ExpelRetry {
                            switch: gs,
                            partition: pa as u32,
                        },
                    );
                }
            }
            return;
        }
    }
}

// -------------------------------------------------------------------
// Faults
// -------------------------------------------------------------------

/// Executes one scheduled fault from the world's fault table.
///
/// The switch-kind faults touch exactly one switch and the host-kind
/// faults exactly one host plus the flows it sources (whose hot/cold
/// halves live in the same domain), so in a parallel run each fault
/// event stays inside its owning domain.
fn fault_fire<E: Env>(ctx: &mut Ctx<'_>, env: &mut E, fault: u32) {
    ctx.metrics.faults_fired += 1;
    let spec = ctx.faults[fault as usize];
    match spec.kind {
        FaultKind::LinkDown { switch, port } => {
            let ls = env.switch_idx(switch);
            let sw = &mut ctx.switches[ls];
            let port = port as usize;
            if !sw.disabled_ports[port] {
                sw.disabled_ports[port] = true;
                sw.n_disabled += 1;
            }
            // Packets already serializing or propagating still deliver;
            // the hop's queued packets are lost with the link.
            flush_port(sw, ctx.metrics, port, ps_to_ns(ctx.now));
        }
        FaultKind::LinkUp { switch, port } => {
            let ls = env.switch_idx(switch);
            let sw = &mut ctx.switches[ls];
            let port = port as usize;
            if sw.disabled_ports[port] {
                sw.disabled_ports[port] = false;
                sw.n_disabled -= 1;
            }
        }
        FaultKind::SwitchDrainStart { switch } => {
            ctx.switches[env.switch_idx(switch)].draining = true;
        }
        FaultKind::SwitchDrainEnd { switch } => {
            ctx.switches[env.switch_idx(switch)].draining = false;
        }
        FaultKind::HostLeave { host } => {
            let lh = env.host_idx(host);
            let h = &mut ctx.hosts[lh];
            h.alive = false;
            let dropped = h.ack_queue.len() + h.cbr_queue.len();
            h.ack_queue.clear();
            h.cbr_queue.clear();
            // `kill` clears each flow's host-queue flag, matching the
            // cleared ready queue.
            h.ready.clear();
            ctx.metrics.fault_drops += dropped as u64;
            let now = ctx.now;
            for (i, f) in ctx.hot.iter_mut().enumerate() {
                if f.src == host && f.started() && !f.done() && !f.killed() {
                    f.kill();
                    ctx.cold[i].first_interrupt_ps.get_or_insert(now);
                }
            }
        }
        FaultKind::HostJoin { host } => {
            let lh = env.host_idx(host);
            ctx.hosts[lh].alive = true;
            for i in 0..ctx.hot.len() {
                if ctx.hot[i].src == host && ctx.hot[i].killed() {
                    ctx.hot[i].resume(ctx.consts);
                    ctx.hosts[lh].mark_ready(ctx.hot, i as FlowId);
                }
            }
            host_pump(ctx, env, host);
        }
    }
}

/// Drops every packet queued on `port` (all classes) when its link goes
/// down, keeping the partition's occupancy accounting and BM state
/// consistent and recording each loss with utilization context.
fn flush_port(sw: &mut Switch, metrics: &mut Metrics, port: usize, now_ns: u64) {
    let membw = sw.membw_util(now_ns);
    if let Some(xp) = &mut sw.xp {
        for inp in 0..xp.n_in {
            let idx = xp.xp(port, inp);
            while let Some(pkt) = xp.queues[idx].pop_front() {
                let wire = pkt.wire_bytes();
                xp.occ[idx] -= wire;
                xp.out_occ[port] -= wire;
                xp.total -= wire;
                metrics.record_fault_drop(xp.util(), membw);
            }
        }
        return;
    }
    let pa = sw.port_partition[port];
    for class in 0..sw.classes {
        let qidx = sw.queue_index(port, class);
        while let Some(pkt) = sw.ports[port].queues[class].pop_front() {
            let wire = pkt.wire_bytes();
            let part = &mut sw.partitions[pa];
            part.state
                .dequeue(qidx, wire)
                .expect("queue accounting out of sync");
            part.bm.on_dequeue(qidx, wire, now_ns, &part.state);
            record_fault_drop_in(sw, metrics, pa, now_ns);
        }
    }
}
