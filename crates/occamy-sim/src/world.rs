//! The simulation world: owns every component and drives the event loop.

use crate::cbr::CbrSource;
use crate::event::{Event, EventQueue, NodeId};
use crate::host::Host;
use crate::metrics::{CbrCounters, Metrics};
use crate::packet::{FlowId, Packet, PacketKind};
use crate::switch::Switch;
use crate::time::{ps_to_ns, tx_time_ps, Ps, NS};
use crate::transport::{CcAlgo, FlowState, FlowTable, TransportConsts};
use crate::SimConfig;
use occamy_core::{BufferManager, DropReason, Verdict};
use occamy_stats::{FlowClass, FlowRecord, FlowSet};

/// Parameters for adding a transport flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowDesc {
    /// Sender host.
    pub src: usize,
    /// Receiver host.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Start time.
    pub start_ps: Ps,
    /// Switch scheduling class.
    pub prio: u8,
    /// Congestion control.
    pub cc: CcAlgo,
    /// Incast query id, if this is a query-response flow.
    pub query: Option<u64>,
    /// Query-class traffic for metric slicing.
    pub is_query: bool,
}

/// Parameters for adding a raw CBR source.
#[derive(Debug, Clone, Copy)]
pub struct CbrDesc {
    /// Emitting host.
    pub host: usize,
    /// Destination host.
    pub dst: usize,
    /// Emission rate in bits/s.
    pub rate_bps: u64,
    /// Payload bytes per packet.
    pub pkt_len: u32,
    /// Switch scheduling class.
    pub prio: u8,
    /// First emission.
    pub start_ps: Ps,
    /// Emission stops at this time.
    pub stop_ps: Ps,
    /// Total payload budget (burst size); `None` = unbounded.
    pub budget_bytes: Option<u64>,
}

/// A registered periodic queue-length sampler (see
/// [`World::add_queue_sampler`]).
#[derive(Debug, Clone, Copy)]
struct SamplerSpec {
    switch: usize,
    partition: usize,
    interval: Ps,
    until: Ps,
}

/// The simulation world.
pub struct World {
    /// Current simulation time.
    pub now: Ps,
    events: EventQueue,
    /// Global configuration.
    pub cfg: SimConfig,
    /// Cached `SimConfig`-derived transport constants (valid because
    /// `cfg` is never mutated after construction).
    pub consts: TransportConsts,
    /// Hosts, indexed by host id.
    pub hosts: Vec<Host>,
    /// Switches, indexed by switch id.
    pub switches: Vec<Switch>,
    /// All transport flows ever added, split hot/cold (see
    /// [`crate::transport`]).
    pub flows: FlowTable,
    /// All CBR sources ever added.
    pub cbrs: Vec<CbrSource>,
    /// Registered queue samplers.
    samplers: Vec<SamplerSpec>,
    /// Collected measurements.
    pub metrics: Metrics,
}

// The parallel experiment runner builds and runs whole worlds on worker
// threads; every component must therefore stay `Send` (no `Rc`,
// `RefCell` or thread-bound state). Enforced at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<World>();
};

impl World {
    /// Creates a world from pre-built hosts and switches (see
    /// [`crate::topology`] for builders).
    pub fn new(cfg: SimConfig, hosts: Vec<Host>, switches: Vec<Switch>) -> Self {
        World {
            now: 0,
            events: EventQueue::new(),
            consts: TransportConsts::new(&cfg),
            cfg,
            hosts,
            switches,
            flows: FlowTable::default(),
            cbrs: Vec::new(),
            samplers: Vec::new(),
            metrics: Metrics::default(),
        }
    }

    // ---------------------------------------------------------------
    // Workload injection
    // ---------------------------------------------------------------

    /// Adds a transport flow; it starts automatically at its start time.
    pub fn add_flow(&mut self, d: FlowDesc) -> FlowId {
        let id = self.flows.len() as FlowId;
        let mut f = FlowState::new(
            id,
            d.src as u32,
            d.dst as u32,
            d.bytes,
            d.prio,
            d.start_ps,
            d.cc,
            &self.consts,
        );
        f.cold.query = d.query;
        f.cold.is_query = d.is_query;
        self.flows.push(f);
        // Workloads inject thousands of flow starts before the loop
        // spins up: keep them off the runtime heap.
        self.events
            .push_deferred(d.start_ps, Event::FlowStart { flow: id });
        id
    }

    /// Adds a raw CBR source; returns its index (used to read
    /// [`Metrics::cbr`] counters).
    pub fn add_cbr(&mut self, d: CbrDesc) -> usize {
        let id = self.cbrs.len();
        self.cbrs.push(CbrSource {
            id,
            host: d.host,
            dst: d.dst,
            rate_bps: d.rate_bps,
            pkt_len: d.pkt_len,
            prio: d.prio,
            start_ps: d.start_ps,
            stop_ps: d.stop_ps,
            budget_bytes: d.budget_bytes,
            emitted_bytes: 0,
            interval_ps: CbrSource::interval_for(d.pkt_len, d.rate_bps),
        });
        self.metrics.cbr.push(CbrCounters::default());
        self.events
            .push_deferred(d.start_ps, Event::CbrEmit { source: id as u32 });
        id
    }

    /// Registers a periodic queue-length sampler over one partition
    /// (paper Fig. 11 time series).
    pub fn add_queue_sampler(&mut self, switch: usize, partition: usize, interval: Ps, until: Ps) {
        let sampler = self.samplers.len() as u32;
        self.samplers.push(SamplerSpec {
            switch,
            partition,
            interval,
            until,
        });
        self.events.push_deferred(0, Event::Sample { sampler });
    }

    // ---------------------------------------------------------------
    // Execution
    // ---------------------------------------------------------------

    /// Executes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.events.pop() else {
            return false;
        };
        self.execute(t, ev);
        true
    }

    #[inline]
    fn execute(&mut self, t: Ps, ev: Event) {
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.metrics.events_processed += 1;
        match ev {
            Event::Arrive { node, pkt } => {
                let pkt = self.events.take_packet(pkt);
                match node {
                    NodeId::Host(h) => self.host_rx(h as usize, pkt),
                    NodeId::Switch(s) => self.switch_rx(s as usize, pkt),
                }
            }
            Event::PortFree { switch, port } => {
                let (s, port) = (switch as usize, port as usize);
                self.switches[s].ports[port].tx_busy = false;
                self.port_pump(s, port);
            }
            Event::HostTxFree { host } => {
                let h = host as usize;
                self.hosts[h].tx_busy = false;
                self.host_pump(h);
            }
            Event::ExpelRetry { switch, partition } => {
                let (s, pa) = (switch as usize, partition as usize);
                self.switches[s].partitions[pa].expel_armed = false;
                self.try_expel(s, pa);
            }
            Event::Rto { flow } => self.rto_fire(flow),
            Event::FlowStart { flow } => {
                let f = flow as usize;
                self.flows.hot[f].set_started(true);
                let h = self.flows.hot[f].src as usize;
                self.hosts[h].mark_ready(&mut self.flows.hot, flow);
                self.host_pump(h);
            }
            Event::CbrEmit { source } => self.cbr_emit(source as usize),
            Event::Sample { sampler } => self.sample(sampler),
        }
    }

    /// Runs until simulated time `t` (events at exactly `t` included).
    pub fn run_until(&mut self, t: Ps) {
        while let Some((at, ev)) = self.events.pop_at_most(t) {
            self.execute(at, ev);
        }
        self.now = self.now.max(t);
    }

    /// Runs until the event queue drains or `limit` is reached.
    pub fn run_to_completion(&mut self, limit: Ps) {
        while let Some((at, ev)) = self.events.pop_at_most(limit) {
            self.execute(at, ev);
        }
    }

    /// Whether all transport flows completed.
    pub fn all_flows_done(&self) -> bool {
        self.flows.hot.iter().all(|f| f.done())
    }

    /// Exports flow completion records for analysis.
    pub fn flow_records(&self) -> FlowSet {
        let mut set = FlowSet::new();
        for (hot, cold) in self.flows.hot.iter().zip(&self.flows.cold) {
            set.push(FlowRecord {
                id: hot.id as u64,
                bytes: hot.bytes,
                start_ps: cold.start_ps,
                end_ps: cold.end_ps,
                class: if cold.is_query {
                    FlowClass::Query
                } else {
                    FlowClass::Background
                },
                query: cold.query,
            });
        }
        set
    }

    // ---------------------------------------------------------------
    // Hosts
    // ---------------------------------------------------------------

    fn host_rx(&mut self, h: usize, pkt: Packet) {
        match pkt.kind {
            PacketKind::Ack => {
                let f = pkt.flow;
                let (hot, cold) = self.flows.pair_mut(f);
                let completed =
                    hot.on_ack(cold, pkt.ack_seq, pkt.ece, pkt.ts, self.now, &self.consts);
                if !completed {
                    self.arm_rto(pkt.flow);
                    if self.flows.hot[f as usize].can_send() {
                        self.hosts[h].mark_ready(&mut self.flows.hot, pkt.flow);
                        self.host_pump(h);
                    }
                }
            }
            PacketKind::Data => {
                self.metrics.delivered_pkts += 1;
                self.metrics.delivered_bytes += pkt.len as u64;
                let f = pkt.flow as usize;
                let ack_seq = self.flows.cold[f].on_data(pkt.seq, pkt.len as u64);
                let sender = self.flows.hot[f].src;
                let ack = Packet::ack(
                    pkt.flow, h as u32, sender, ack_seq, pkt.ce, pkt.prio, pkt.ts,
                );
                self.hosts[h].ack_queue.push_back(ack);
                self.host_pump(h);
            }
            PacketKind::Raw => {
                let c = &mut self.metrics.cbr[pkt.flow as usize];
                c.rcvd_pkts += 1;
                c.rcvd_bytes += pkt.len as u64;
                self.metrics.delivered_pkts += 1;
                self.metrics.delivered_bytes += pkt.len as u64;
            }
        }
    }

    fn host_pump(&mut self, h: usize) {
        if self.hosts[h].tx_busy {
            return;
        }
        let now = self.now;
        let Some(pkt) = self.hosts[h].next_packet(&mut self.flows.hot, now, &self.consts) else {
            return;
        };
        if pkt.kind == PacketKind::Data {
            self.arm_rto(pkt.flow);
        }
        if pkt.kind == PacketKind::Raw {
            let c = &mut self.metrics.cbr[pkt.flow as usize];
            c.sent_pkts += 1;
            c.sent_bytes += pkt.len as u64;
        }
        let host = &mut self.hosts[h];
        let link = host.link;
        let ser = tx_time_ps(pkt.wire_bytes(), link.rate_bps);
        host.tx_busy = true;
        self.events
            .push(now + ser, Event::HostTxFree { host: h as u32 });
        self.events.push_arrival(
            now + ser + link.prop_ps,
            NodeId::switch(link.to_switch),
            pkt,
        );
    }

    fn arm_rto(&mut self, flow: FlowId) {
        let f = &mut self.flows.hot[flow as usize];
        if !f.outstanding() {
            return;
        }
        let deadline = self.now + f.timer_delay(&self.consts);
        f.rto_deadline = deadline;
        if !f.timer_armed() {
            f.set_timer_armed(true);
            // Timers live on the wheel, not the packet heap.
            self.events.push_timer(deadline, Event::Rto { flow });
        }
    }

    fn rto_fire(&mut self, flow: FlowId) {
        let (f, cold) = self.flows.pair_mut(flow);
        f.set_timer_armed(false);
        if f.done() || !f.outstanding() {
            return;
        }
        if self.now < f.rto_deadline {
            // Deadline was pushed forward by ACK activity: resleep.
            f.set_timer_armed(true);
            let at = f.rto_deadline;
            self.events.push_timer(at, Event::Rto { flow });
            return;
        }
        // Tail-loss probe first (no congestion-state change), full RTO
        // once the probe budget is exhausted.
        f.on_timer(cold, &self.consts);
        self.arm_rto(flow);
        let h = self.flows.hot[flow as usize].src as usize;
        self.hosts[h].mark_ready(&mut self.flows.hot, flow);
        self.host_pump(h);
    }

    fn cbr_emit(&mut self, source: usize) {
        let now = self.now;
        let src = &mut self.cbrs[source];
        if !src.active(now) {
            return;
        }
        let pkt = src.emit(now);
        let h = src.host;
        self.hosts[h].cbr_queue.push_back(pkt);
        self.host_pump(h);
        let src = &self.cbrs[source];
        let next = now + src.emit_interval();
        if src.active(next) {
            self.events.push(
                next,
                Event::CbrEmit {
                    source: source as u32,
                },
            );
        }
    }

    // ---------------------------------------------------------------
    // Switches
    // ---------------------------------------------------------------
    //
    // The switch-side handlers borrow their switch exactly once per
    // event and thread it through free helper functions; the old
    // `self.switches[s]` re-borrow per sub-step showed up in profiles.

    fn switch_rx(&mut self, s: usize, mut pkt: Packet) {
        let now = self.now;
        let now_ns = ps_to_ns(now);
        let ecn_k = self.cfg.ecn_k_bytes;
        let cell = self.cfg.cell_bytes;
        let sw = &mut self.switches[s];
        let port = sw.routing.port_for(pkt.dst as usize, pkt.flow);
        let class = (pkt.prio as usize).min(sw.classes - 1);
        let pa = sw.port_partition[port];
        let qidx = sw.queue_index(port, class);
        let wire = pkt.wire_bytes();
        let part = &mut sw.partitions[pa];

        match part.bm.admit(qidx, wire, &part.state) {
            Verdict::Accept => {
                enqueue_in(sw, pa, port, class, qidx, pkt, ecn_k, now_ns);
                pump_port(sw, &mut self.events, cell, now, s, port);
                if sw.partitions[pa].reactive {
                    try_expel_in(sw, &mut self.events, &mut self.metrics, cell, now, s, pa);
                }
            }
            Verdict::Evict => {
                // Pushout: synchronously evict from the longest queue
                // until the newcomer fits (paper §2.2).
                while sw.partitions[pa].state.free() < wire {
                    let part = &mut sw.partitions[pa];
                    let Some(v) = part.bm.select_victim(&part.state) else {
                        break;
                    };
                    if !head_drop_in(sw, pa, v, now_ns) {
                        break;
                    }
                    self.metrics.drops.pushout_evictions += 1;
                }
                if sw.partitions[pa].state.free() >= wire {
                    enqueue_in(sw, pa, port, class, qidx, pkt, ecn_k, now_ns);
                    pump_port(sw, &mut self.events, cell, now, s, port);
                } else {
                    record_drop_in(sw, &mut self.metrics, pa, now_ns, false);
                }
            }
            Verdict::Drop(reason) => {
                let threshold = reason == DropReason::OverThreshold;
                record_drop_in(sw, &mut self.metrics, pa, now_ns, threshold);
                if sw.partitions[pa].reactive {
                    try_expel_in(sw, &mut self.events, &mut self.metrics, cell, now, s, pa);
                }
                let _ = &mut pkt; // dropped
            }
        }
    }

    fn port_pump(&mut self, s: usize, port: usize) {
        let now = self.now;
        let cell = self.cfg.cell_bytes;
        pump_port(&mut self.switches[s], &mut self.events, cell, now, s, port);
    }

    /// Occamy's reactive expulsion process: head-drop from over-allocated
    /// queues while redundant memory bandwidth is available.
    fn try_expel(&mut self, s: usize, pa: usize) {
        let now = self.now;
        let cell = self.cfg.cell_bytes;
        try_expel_in(
            &mut self.switches[s],
            &mut self.events,
            &mut self.metrics,
            cell,
            now,
            s,
            pa,
        );
    }

    fn sample(&mut self, sampler: u32) {
        let SamplerSpec {
            switch,
            partition,
            interval,
            until,
        } = self.samplers[sampler as usize];
        let part = &self.switches[switch].partitions[partition];
        self.metrics.queue_samples.record(
            self.now,
            switch,
            partition,
            part.state.iter().map(|(_, l)| l),
            (0..part.state.num_queues()).map(|q| part.bm.threshold(q, &part.state)),
        );
        if self.now + interval <= until {
            self.events
                .push(self.now + interval, Event::Sample { sampler });
        }
    }
}

/// Enqueues an admitted packet into its partition and port queue,
/// applying DCTCP CE marking.
#[allow(clippy::too_many_arguments)]
fn enqueue_in(
    sw: &mut Switch,
    pa: usize,
    port: usize,
    class: usize,
    qidx: usize,
    mut pkt: Packet,
    ecn_k: u64,
    now_ns: u64,
) {
    let wire = pkt.wire_bytes();
    let part = &mut sw.partitions[pa];
    part.state
        .enqueue(qidx, wire)
        .expect("BM admitted beyond capacity");
    part.bm.on_enqueue(qidx, wire, now_ns, &part.state);
    let qlen = part.state.queue_len(qidx);
    sw.write_rate.record(wire, now_ns);
    // DCTCP marking: CE when the instantaneous queue exceeds K.
    if pkt.kind == PacketKind::Data && qlen > ecn_k {
        pkt.ce = true;
    }
    sw.ports[port].queues[class].push_back(pkt);
}

/// Records a refused arrival with its utilization context.
fn record_drop_in(sw: &Switch, metrics: &mut Metrics, pa: usize, now_ns: u64, threshold: bool) {
    let part = &sw.partitions[pa];
    let util = part.state.total() as f64 / part.state.capacity() as f64;
    let membw = sw.membw_util(now_ns);
    metrics.record_drop(threshold, util, membw);
}

/// Removes the head packet of partition-local queue `qidx` without
/// transmitting it. Returns `false` if the queue was empty.
fn head_drop_in(sw: &mut Switch, pa: usize, qidx: usize, now_ns: u64) -> bool {
    let (port, class) = sw.queue_location(pa, qidx);
    let Some(pkt) = sw.ports[port].queues[class].pop_front() else {
        return false;
    };
    let wire = pkt.wire_bytes();
    let part = &mut sw.partitions[pa];
    part.state
        .dequeue(qidx, wire)
        .expect("queue accounting out of sync");
    part.bm.on_dequeue(qidx, wire, now_ns, &part.state);
    // A head drop costs PD/cell-pointer bandwidth, which the token
    // bucket charges, but never touches the cell data memory, so the
    // read-rate estimator (data path) is not updated (paper §3.2).
    true
}

/// Dequeues and transmits the scheduler's pick on an idle egress port.
fn pump_port(sw: &mut Switch, events: &mut EventQueue, cell: u64, now: Ps, s: usize, port: usize) {
    if sw.ports[port].tx_busy {
        return;
    }
    let now_ns = ps_to_ns(now);
    let p = &mut sw.ports[port];
    let Some(class) = p.sched.pick(&p.queues) else {
        return;
    };
    let pkt = p.queues[class]
        .pop_front()
        .expect("scheduler picked an empty queue");
    let wire = pkt.wire_bytes();
    let pa = sw.port_partition[port];
    let qidx = sw.queue_index(port, class);
    let part = &mut sw.partitions[pa];
    part.state
        .dequeue(qidx, wire)
        .expect("queue accounting out of sync");
    part.bm.on_dequeue(qidx, wire, now_ns, &part.state);
    // TX has absolute priority on memory bandwidth: it may drive the
    // expulsion token balance negative (fixed-priority arbiter, §4.3).
    part.tb.force_take(wire.div_ceil(cell) as f64, now_ns);
    sw.read_rate.record(wire, now_ns);
    let p = &mut sw.ports[port];
    let link = p.link;
    p.tx_busy = true;
    let ser = tx_time_ps(wire, link.rate_bps);
    events.push(
        now + ser,
        Event::PortFree {
            switch: s as u32,
            port: port as u32,
        },
    );
    events.push_arrival(now + ser + link.prop_ps, link.to, pkt);
}

/// Occamy's reactive expulsion loop over one partition.
fn try_expel_in(
    sw: &mut Switch,
    events: &mut EventQueue,
    metrics: &mut Metrics,
    cell: u64,
    now: Ps,
    s: usize,
    pa: usize,
) {
    if !sw.partitions[pa].reactive {
        return;
    }
    let now_ns = ps_to_ns(now);
    loop {
        let part = &mut sw.partitions[pa];
        let Some(v) = part.bm.select_victim(&part.state) else {
            return;
        };
        // Cost of expelling the head packet, in cells.
        let (port, class) = sw.queue_location(pa, v);
        let Some(head_wire) = sw.ports[port].queues[class].front().map(|p| p.wire_bytes()) else {
            return;
        };
        let cells = head_wire.div_ceil(cell) as f64;
        let part = &mut sw.partitions[pa];
        if part.tb.try_take(cells, now_ns) {
            head_drop_in(sw, pa, v, now_ns);
            metrics.drops.head_drops += 1;
        } else {
            // Not enough redundant bandwidth now: retry once the
            // bucket has refilled enough for this packet. A `None`
            // means the request can never be satisfied (zero-rate
            // ablation or a cap below one packet): leave disarmed and
            // let the next enqueue re-evaluate.
            if !part.expel_armed {
                if let Some(wait_ns) = part.tb.time_until(cells, now_ns) {
                    part.expel_armed = true;
                    events.push(
                        now.saturating_add(wait_ns.max(1).saturating_mul(NS)),
                        Event::ExpelRetry {
                            switch: s as u32,
                            partition: pa as u32,
                        },
                    );
                }
            }
            return;
        }
    }
}
