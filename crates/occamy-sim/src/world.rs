//! The simulation world: owns every component and drives the event loop.
//!
//! The handlers themselves live in [`crate::engine`]; `World` wires
//! them to the global [`EventQueue`] (the serial environment) and, when
//! [`SimConfig::threads`] asks for it and the topology exports event
//! domains, hands the whole run to the deterministic parallel executor
//! in [`crate::par`].

use crate::cbr::CbrSource;
use crate::engine;
use crate::event::{Event, EventQueue};
use crate::faults::{FaultKind, FaultSpec, ResilienceCounters};
use crate::host::Host;
use crate::metrics::{CbrCounters, Metrics};
use crate::packet::FlowId;
use crate::switch::Switch;
use crate::time::Ps;
use crate::transport::{CcAlgo, FlowState, FlowTable, TransportConsts};
use crate::SimConfig;
use occamy_stats::{FlowClass, FlowRecord, FlowSet};

/// Parameters for adding a transport flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowDesc {
    /// Sender host.
    pub src: usize,
    /// Receiver host.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Start time.
    pub start_ps: Ps,
    /// Switch scheduling class.
    pub prio: u8,
    /// Congestion control.
    pub cc: CcAlgo,
    /// Incast query id, if this is a query-response flow.
    pub query: Option<u64>,
    /// Query-class traffic for metric slicing.
    pub is_query: bool,
}

/// Parameters for adding a raw CBR source.
#[derive(Debug, Clone, Copy)]
pub struct CbrDesc {
    /// Emitting host.
    pub host: usize,
    /// Destination host.
    pub dst: usize,
    /// Emission rate in bits/s.
    pub rate_bps: u64,
    /// Payload bytes per packet.
    pub pkt_len: u32,
    /// Switch scheduling class.
    pub prio: u8,
    /// First emission.
    pub start_ps: Ps,
    /// Emission stops at this time.
    pub stop_ps: Ps,
    /// Total payload budget (burst size); `None` = unbounded.
    pub budget_bytes: Option<u64>,
}

/// A registered periodic queue-length sampler (see
/// [`World::add_queue_sampler`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SamplerSpec {
    pub(crate) switch: usize,
    pub(crate) partition: usize,
    pub(crate) interval: Ps,
    pub(crate) until: Ps,
}

/// The simulation world.
pub struct World {
    /// Current simulation time.
    pub now: Ps,
    pub(crate) events: EventQueue,
    /// Global configuration.
    pub cfg: SimConfig,
    /// Cached `SimConfig`-derived transport constants (valid because
    /// `cfg` is never mutated after construction).
    pub consts: TransportConsts,
    /// Hosts, indexed by host id.
    pub hosts: Vec<Host>,
    /// Switches, indexed by switch id.
    pub switches: Vec<Switch>,
    /// All transport flows ever added, split hot/cold/rx (see
    /// [`crate::transport`]).
    pub flows: FlowTable,
    /// All CBR sources ever added.
    pub cbrs: Vec<CbrSource>,
    /// Registered queue samplers.
    pub(crate) samplers: Vec<SamplerSpec>,
    /// Scheduled faults, in registration order (`Event::Fault` payloads
    /// index into this table; immutable once the loop starts).
    pub(crate) faults: Vec<FaultSpec>,
    /// Collected measurements.
    pub metrics: Metrics,
    /// Event-domain partition exported by the topology builder, if any
    /// (see [`crate::topology::DomainMap`]); enables parallel runs.
    pub domains: Option<crate::topology::DomainMap>,
    /// Statistics from the most recent parallel run (`None` until a
    /// run actually takes the parallel path). Purely observational —
    /// never feeds back into simulation state.
    pub par_stats: Option<crate::par::ParStats>,
}

// The parallel experiment runner builds and runs whole worlds on worker
// threads; every component must therefore stay `Send` (no `Rc`,
// `RefCell` or thread-bound state). Enforced at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<World>();
};

impl World {
    /// Creates a world from pre-built hosts and switches (see
    /// [`crate::topology`] for builders).
    pub fn new(cfg: SimConfig, hosts: Vec<Host>, switches: Vec<Switch>) -> Self {
        World {
            now: 0,
            events: EventQueue::new(),
            consts: TransportConsts::new(&cfg),
            cfg,
            hosts,
            switches,
            flows: FlowTable::default(),
            cbrs: Vec::new(),
            samplers: Vec::new(),
            faults: Vec::new(),
            metrics: Metrics::default(),
            domains: None,
            par_stats: None,
        }
    }

    /// Converts every switch to the crosspoint-queued architecture
    /// (see [`crate::crosspoint`]): each switch's total buffer is
    /// divided into dedicated per-(input, output) crosspoint FIFOs, its
    /// shared-memory partitions stay empty, and `sched` picks which
    /// crosspoint each output serves. Call after the topology builder
    /// and before injecting workload.
    ///
    /// The ingress set of a switch — one input per distinct neighbor
    /// that can send to it — is derived from the built link graph
    /// (hosts by their access link, switches by their ports), so the
    /// map is exact for any topology the builders produce.
    pub fn enable_crosspoint(&mut self, sched: crate::crosspoint::XpSched) {
        use crate::crosspoint::{encode_hop, Crosspoint};
        use crate::NodeId;
        let mut ingress: Vec<Vec<u32>> = vec![Vec::new(); self.switches.len()];
        for h in &self.hosts {
            ingress[h.link.to_switch].push(encode_hop(NodeId::Host(h.id as u32)));
        }
        for sw in &self.switches {
            for p in &sw.ports {
                if let NodeId::Switch(peer) = p.link.to {
                    ingress[peer as usize].push(encode_hop(NodeId::Switch(sw.id as u32)));
                }
            }
        }
        for (si, sw) in self.switches.iter_mut().enumerate() {
            let total: u64 = sw.partitions.iter().map(|p| p.state.capacity()).sum();
            sw.xp = Some(Crosspoint::new(
                sw.ports.len(),
                std::mem::take(&mut ingress[si]),
                total,
                sched,
            ));
        }
    }

    // ---------------------------------------------------------------
    // Workload injection
    // ---------------------------------------------------------------

    /// Adds a transport flow; it starts automatically at its start time.
    pub fn add_flow(&mut self, d: FlowDesc) -> FlowId {
        let id = self.flows.len() as FlowId;
        let mut f = FlowState::new(
            id,
            d.src as u32,
            d.dst as u32,
            d.bytes,
            d.prio,
            d.start_ps,
            d.cc,
            &self.consts,
        );
        f.cold.query = d.query;
        f.cold.is_query = d.is_query;
        self.flows.push(f);
        // Workloads inject thousands of flow starts before the loop
        // spins up: keep them off the runtime heap.
        self.events
            .push_deferred(d.start_ps, Event::FlowStart { flow: id });
        id
    }

    /// Adds a raw CBR source; returns its index (used to read
    /// [`Metrics::cbr`] counters).
    pub fn add_cbr(&mut self, d: CbrDesc) -> usize {
        let id = self.cbrs.len();
        self.cbrs.push(CbrSource {
            id,
            host: d.host,
            dst: d.dst,
            rate_bps: d.rate_bps,
            pkt_len: d.pkt_len,
            prio: d.prio,
            start_ps: d.start_ps,
            stop_ps: d.stop_ps,
            budget_bytes: d.budget_bytes,
            emitted_bytes: 0,
            interval_ps: CbrSource::interval_for(d.pkt_len, d.rate_bps),
        });
        self.metrics.cbr.push(CbrCounters::default());
        self.events
            .push_deferred(d.start_ps, Event::CbrEmit { source: id as u32 });
        id
    }

    /// Registers a periodic queue-length sampler over one partition
    /// (paper Fig. 11 time series). Worlds with samplers always run on
    /// the serial path: the sample cadence is a global clock that would
    /// serialize the domains anyway.
    pub fn add_queue_sampler(&mut self, switch: usize, partition: usize, interval: Ps, until: Ps) {
        let sampler = self.samplers.len() as u32;
        self.samplers.push(SamplerSpec {
            switch,
            partition,
            interval,
            until,
        });
        self.events.push_deferred(0, Event::Sample { sampler });
    }

    /// Schedules one fault at absolute time `at` (usually via
    /// [`crate::FaultSchedule::apply`], which resolves duration-relative
    /// fractions). Registration order is the deterministic tie-break for
    /// equal-time faults.
    ///
    /// # Panics
    ///
    /// Panics if the fault references a switch, port or host outside
    /// this world.
    pub fn add_fault(&mut self, at: Ps, kind: FaultKind) {
        match kind {
            FaultKind::LinkDown { switch, port } | FaultKind::LinkUp { switch, port } => {
                let sw = self
                    .switches
                    .get(switch as usize)
                    .unwrap_or_else(|| panic!("fault references unknown switch {switch}"));
                assert!(
                    (port as usize) < sw.ports.len(),
                    "fault references port {port} outside switch {switch} ({} ports)",
                    sw.ports.len()
                );
            }
            FaultKind::SwitchDrainStart { switch } | FaultKind::SwitchDrainEnd { switch } => {
                assert!(
                    (switch as usize) < self.switches.len(),
                    "fault references unknown switch {switch}"
                );
            }
            FaultKind::HostLeave { host } | FaultKind::HostJoin { host } => {
                assert!(
                    (host as usize) < self.hosts.len(),
                    "fault references unknown host {host}"
                );
            }
        }
        let fault = self.faults.len() as u32;
        self.faults.push(FaultSpec { at, kind });
        self.events.push_deferred(at, Event::Fault { fault });
    }

    /// The scheduled fault table, in registration order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    // ---------------------------------------------------------------
    // Execution
    // ---------------------------------------------------------------

    /// Executes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.events.pop() else {
            return false;
        };
        self.execute(t, ev);
        true
    }

    #[inline]
    fn execute(&mut self, t: Ps, ev: Event) {
        let World {
            now,
            events,
            cfg,
            consts,
            hosts,
            switches,
            flows,
            cbrs,
            samplers,
            faults,
            metrics,
            ..
        } = self;
        let mut ctx = engine::Ctx {
            now: *now,
            cfg,
            consts,
            hosts,
            switches,
            hot: flows.hot.as_mut_slice(),
            cold: flows.cold.as_mut_slice(),
            rx: flows.rx.as_mut_slice(),
            cbrs,
            samplers,
            faults,
            metrics,
        };
        engine::execute_event(&mut ctx, events, t, ev);
        *now = ctx.now;
    }

    /// Serial event loop: drains events with timestamp `<= limit`.
    /// The [`engine::Ctx`] is built once and reused across the whole
    /// loop so the per-event cost is identical to the pre-split
    /// monolithic dispatch.
    fn run_serial(&mut self, limit: Ps) {
        let World {
            now,
            events,
            cfg,
            consts,
            hosts,
            switches,
            flows,
            cbrs,
            samplers,
            faults,
            metrics,
            ..
        } = self;
        let mut ctx = engine::Ctx {
            now: *now,
            cfg,
            consts,
            hosts,
            switches,
            hot: flows.hot.as_mut_slice(),
            cold: flows.cold.as_mut_slice(),
            rx: flows.rx.as_mut_slice(),
            cbrs,
            samplers,
            faults,
            metrics,
        };
        match std::num::NonZeroU64::new(crate::telemetry::cadence()) {
            // Telemetry off: the pre-telemetry loop, byte for byte.
            None => {
                while let Some((at, ev)) = events.pop_at_most(limit) {
                    engine::execute_event(&mut ctx, events, at, ev);
                }
            }
            // Same loop plus a counter check per event; snapshots are
            // read-only over sim state, so outputs stay identical.
            Some(cadence) => {
                let step = cadence.get();
                let mut next = (ctx.metrics.events_processed / cadence + 1) * step;
                while let Some((at, ev)) = events.pop_at_most(limit) {
                    engine::execute_event(&mut ctx, events, at, ev);
                    if ctx.metrics.events_processed >= next {
                        crate::telemetry::emit_snapshot_serial(
                            &*ctx.switches,
                            &*ctx.metrics,
                            ctx.now,
                            limit,
                        );
                        next = (ctx.metrics.events_processed / cadence + 1) * step;
                    }
                }
            }
        }
        *now = ctx.now;
    }

    /// Runs until simulated time `t` (events at exactly `t` included).
    pub fn run_until(&mut self, t: Ps) {
        if self.parallel_engaged() {
            let stats = crate::par::run_parallel(self, t);
            self.par_stats = Some(stats);
        } else {
            self.run_serial(t);
        }
        self.now = self.now.max(t);
    }

    /// Runs until the event queue drains or `limit` is reached.
    pub fn run_to_completion(&mut self, limit: Ps) {
        if self.parallel_engaged() {
            let stats = crate::par::run_parallel(self, limit);
            self.par_stats = Some(stats);
        } else {
            self.run_serial(limit);
        }
    }

    /// Whether this run takes the domain-decomposed parallel path.
    /// `threads <= 1` always takes the serial path (bit-for-bit the
    /// pre-parallelism loop); samplers force serial (global cadence);
    /// a single domain or zero lookahead has nothing to parallelize.
    fn parallel_engaged(&self) -> bool {
        self.cfg.threads > 1
            && self.samplers.is_empty()
            && self
                .domains
                .as_ref()
                .is_some_and(|d| d.n_domains() > 1 && d.lookahead_ps > 0)
    }

    /// Whether all transport flows completed.
    pub fn all_flows_done(&self) -> bool {
        self.flows.hot.iter().all(|f| f.done())
    }

    /// Aggregates the transport-recovery outcome of a finished run:
    /// per-flow retransmission/RTO counters, the fault counters, kill /
    /// recovery tallies and per-flow recovery times (in flow-id order,
    /// so the result is deterministic).
    pub fn resilience(&self) -> ResilienceCounters {
        let mut r = ResilienceCounters {
            faults_fired: self.metrics.faults_fired,
            fault_drops: self.metrics.fault_drops,
            ..ResilienceCounters::default()
        };
        for (hot, cold) in self.flows.hot.iter().zip(&self.flows.cold) {
            r.retransmissions += hot.retransmissions();
            r.rto_fires += hot.rto_fires();
            if hot.killed() {
                r.flows_killed += 1;
            }
            if let (Some(first), Some(end)) = (cold.first_interrupt_ps, cold.end_ps) {
                r.flows_recovered += 1;
                r.recovery_times_ps.push(end.saturating_sub(first));
            }
        }
        r
    }

    /// Exports flow completion records for analysis.
    pub fn flow_records(&self) -> FlowSet {
        let mut set = FlowSet::new();
        for (hot, cold) in self.flows.hot.iter().zip(&self.flows.cold) {
            set.push(FlowRecord {
                id: hot.id as u64,
                bytes: hot.bytes,
                start_ps: cold.start_ps,
                end_ps: cold.end_ps,
                class: if cold.is_query {
                    FlowClass::Query
                } else {
                    FlowClass::Background
                },
                query: cold.query,
            });
        }
        set
    }
}
