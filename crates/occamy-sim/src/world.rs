//! The simulation world: owns every component and drives the event loop.

use crate::cbr::CbrSource;
use crate::event::{Event, EventQueue, NodeId};
use crate::host::Host;
use crate::metrics::{CbrCounters, Metrics, QueueSample};
use crate::packet::{FlowId, Packet, PacketKind};
use crate::switch::Switch;
use crate::time::{ps_to_ns, tx_time_ps, Ps, NS};
use crate::transport::{CcAlgo, FlowState};
use crate::SimConfig;
use occamy_core::{BufferManager, DropReason, Verdict};
use occamy_stats::{FlowClass, FlowRecord, FlowSet};

/// Parameters for adding a transport flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowDesc {
    /// Sender host.
    pub src: usize,
    /// Receiver host.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Start time.
    pub start_ps: Ps,
    /// Switch scheduling class.
    pub prio: u8,
    /// Congestion control.
    pub cc: CcAlgo,
    /// Incast query id, if this is a query-response flow.
    pub query: Option<u64>,
    /// Query-class traffic for metric slicing.
    pub is_query: bool,
}

/// Parameters for adding a raw CBR source.
#[derive(Debug, Clone, Copy)]
pub struct CbrDesc {
    /// Emitting host.
    pub host: usize,
    /// Destination host.
    pub dst: usize,
    /// Emission rate in bits/s.
    pub rate_bps: u64,
    /// Payload bytes per packet.
    pub pkt_len: u32,
    /// Switch scheduling class.
    pub prio: u8,
    /// First emission.
    pub start_ps: Ps,
    /// Emission stops at this time.
    pub stop_ps: Ps,
    /// Total payload budget (burst size); `None` = unbounded.
    pub budget_bytes: Option<u64>,
}

/// The simulation world.
pub struct World {
    /// Current simulation time.
    pub now: Ps,
    events: EventQueue,
    /// Global configuration.
    pub cfg: SimConfig,
    /// Hosts, indexed by host id.
    pub hosts: Vec<Host>,
    /// Switches, indexed by switch id.
    pub switches: Vec<Switch>,
    /// All transport flows ever added.
    pub flows: Vec<FlowState>,
    /// All CBR sources ever added.
    pub cbrs: Vec<CbrSource>,
    /// Collected measurements.
    pub metrics: Metrics,
}

// The parallel experiment runner builds and runs whole worlds on worker
// threads; every component must therefore stay `Send` (no `Rc`,
// `RefCell` or thread-bound state). Enforced at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<World>();
};

impl World {
    /// Creates a world from pre-built hosts and switches (see
    /// [`crate::topology`] for builders).
    pub fn new(cfg: SimConfig, hosts: Vec<Host>, switches: Vec<Switch>) -> Self {
        World {
            now: 0,
            events: EventQueue::new(),
            cfg,
            hosts,
            switches,
            flows: Vec::new(),
            cbrs: Vec::new(),
            metrics: Metrics::default(),
        }
    }

    // ---------------------------------------------------------------
    // Workload injection
    // ---------------------------------------------------------------

    /// Adds a transport flow; it starts automatically at its start time.
    pub fn add_flow(&mut self, d: FlowDesc) -> FlowId {
        let id = self.flows.len() as FlowId;
        let mut f = FlowState::new(
            id,
            d.src as u32,
            d.dst as u32,
            d.bytes,
            d.prio,
            d.start_ps,
            d.cc,
            &self.cfg,
        );
        f.query = d.query;
        f.is_query = d.is_query;
        self.flows.push(f);
        self.events.push(d.start_ps, Event::FlowStart { flow: id });
        id
    }

    /// Adds a raw CBR source; returns its index (used to read
    /// [`Metrics::cbr`] counters).
    pub fn add_cbr(&mut self, d: CbrDesc) -> usize {
        let id = self.cbrs.len();
        self.cbrs.push(CbrSource {
            id,
            host: d.host,
            dst: d.dst,
            rate_bps: d.rate_bps,
            pkt_len: d.pkt_len,
            prio: d.prio,
            start_ps: d.start_ps,
            stop_ps: d.stop_ps,
            budget_bytes: d.budget_bytes,
            emitted_bytes: 0,
        });
        self.metrics.cbr.push(CbrCounters::default());
        self.events.push(d.start_ps, Event::CbrEmit { source: id });
        id
    }

    /// Registers a periodic queue-length sampler over one partition
    /// (paper Fig. 11 time series).
    pub fn add_queue_sampler(&mut self, switch: usize, partition: usize, interval: Ps, until: Ps) {
        self.events.push(
            0,
            Event::Sample {
                switch,
                partition,
                interval,
                until,
            },
        );
    }

    // ---------------------------------------------------------------
    // Execution
    // ---------------------------------------------------------------

    /// Executes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.events.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        match ev {
            Event::Arrive { node, pkt } => match node {
                NodeId::Host(h) => self.host_rx(h, pkt),
                NodeId::Switch(s) => self.switch_rx(s, pkt),
            },
            Event::PortFree { switch, port } => {
                self.switches[switch].ports[port].tx_busy = false;
                self.port_pump(switch, port);
            }
            Event::HostTxFree { host } => {
                self.hosts[host].tx_busy = false;
                self.host_pump(host);
            }
            Event::ExpelRetry { switch, partition } => {
                self.switches[switch].partitions[partition].expel_armed = false;
                self.try_expel(switch, partition);
            }
            Event::Rto { flow } => self.rto_fire(flow),
            Event::FlowStart { flow } => {
                let f = flow as usize;
                self.flows[f].started = true;
                let h = self.flows[f].src as usize;
                self.hosts[h].mark_ready(&mut self.flows, flow);
                self.host_pump(h);
            }
            Event::CbrEmit { source } => self.cbr_emit(source),
            Event::Sample {
                switch,
                partition,
                interval,
                until,
            } => self.sample(switch, partition, interval, until),
        }
        true
    }

    /// Runs until simulated time `t` (events at exactly `t` included).
    pub fn run_until(&mut self, t: Ps) {
        while let Some(next) = self.events.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Runs until the event queue drains or `limit` is reached.
    pub fn run_to_completion(&mut self, limit: Ps) {
        while let Some(next) = self.events.peek_time() {
            if next > limit {
                break;
            }
            self.step();
        }
    }

    /// Whether all transport flows completed.
    pub fn all_flows_done(&self) -> bool {
        self.flows.iter().all(|f| f.done())
    }

    /// Exports flow completion records for analysis.
    pub fn flow_records(&self) -> FlowSet {
        let mut set = FlowSet::new();
        for f in &self.flows {
            set.push(FlowRecord {
                id: f.id as u64,
                bytes: f.bytes,
                start_ps: f.start_ps,
                end_ps: f.end_ps,
                class: if f.is_query {
                    FlowClass::Query
                } else {
                    FlowClass::Background
                },
                query: f.query,
            });
        }
        set
    }

    // ---------------------------------------------------------------
    // Hosts
    // ---------------------------------------------------------------

    fn host_rx(&mut self, h: usize, pkt: Packet) {
        match pkt.kind {
            PacketKind::Ack => {
                let f = pkt.flow as usize;
                let completed =
                    self.flows[f].on_ack(pkt.ack_seq, pkt.ece, pkt.ts, self.now, &self.cfg);
                if !completed {
                    self.arm_rto(pkt.flow);
                    if self.flows[f].can_send() {
                        self.hosts[h].mark_ready(&mut self.flows, pkt.flow);
                        self.host_pump(h);
                    }
                }
            }
            PacketKind::Data => {
                self.metrics.delivered_pkts += 1;
                self.metrics.delivered_bytes += pkt.len as u64;
                let f = pkt.flow as usize;
                let ack_seq = self.flows[f].on_data(pkt.seq, pkt.len as u64);
                let sender = self.flows[f].src;
                let ack = Packet::ack(
                    pkt.flow, h as u32, sender, ack_seq, pkt.ce, pkt.prio, pkt.ts,
                );
                self.hosts[h].ack_queue.push_back(ack);
                self.host_pump(h);
            }
            PacketKind::Raw => {
                let c = &mut self.metrics.cbr[pkt.flow as usize];
                c.rcvd_pkts += 1;
                c.rcvd_bytes += pkt.len as u64;
                self.metrics.delivered_pkts += 1;
                self.metrics.delivered_bytes += pkt.len as u64;
            }
        }
    }

    fn host_pump(&mut self, h: usize) {
        if self.hosts[h].tx_busy {
            return;
        }
        let now = self.now;
        let Some(pkt) = self.hosts[h].next_packet(&mut self.flows, now, &self.cfg) else {
            return;
        };
        if pkt.kind == PacketKind::Data {
            self.arm_rto(pkt.flow);
        }
        if pkt.kind == PacketKind::Raw {
            let c = &mut self.metrics.cbr[pkt.flow as usize];
            c.sent_pkts += 1;
            c.sent_bytes += pkt.len as u64;
        }
        let link = self.hosts[h].link;
        let ser = tx_time_ps(pkt.wire_bytes(), link.rate_bps);
        self.hosts[h].tx_busy = true;
        self.events.push(now + ser, Event::HostTxFree { host: h });
        self.events.push(
            now + ser + link.prop_ps,
            Event::Arrive {
                node: NodeId::Switch(link.to_switch),
                pkt,
            },
        );
    }

    fn arm_rto(&mut self, flow: FlowId) {
        let f = &mut self.flows[flow as usize];
        if !f.outstanding() {
            return;
        }
        let deadline = self.now + f.timer_delay(&self.cfg);
        f.rto_deadline = deadline;
        if !f.timer_armed {
            f.timer_armed = true;
            self.events.push(deadline, Event::Rto { flow });
        }
    }

    fn rto_fire(&mut self, flow: FlowId) {
        let f = &mut self.flows[flow as usize];
        f.timer_armed = false;
        if f.done() || !f.outstanding() {
            return;
        }
        if self.now < f.rto_deadline {
            // Deadline was pushed forward by ACK activity: resleep.
            f.timer_armed = true;
            let at = f.rto_deadline;
            self.events.push(at, Event::Rto { flow });
            return;
        }
        // Tail-loss probe first (no congestion-state change), full RTO
        // once the probe budget is exhausted.
        f.on_timer(&self.cfg);
        self.arm_rto(flow);
        let h = self.flows[flow as usize].src as usize;
        self.hosts[h].mark_ready(&mut self.flows, flow);
        self.host_pump(h);
    }

    fn cbr_emit(&mut self, source: usize) {
        let now = self.now;
        if !self.cbrs[source].active(now) {
            return;
        }
        let pkt = self.cbrs[source].emit(now);
        let h = self.cbrs[source].host;
        self.hosts[h].cbr_queue.push_back(pkt);
        self.host_pump(h);
        let next = now + self.cbrs[source].emit_interval();
        if self.cbrs[source].active(next) {
            self.events.push(next, Event::CbrEmit { source });
        }
    }

    // ---------------------------------------------------------------
    // Switches
    // ---------------------------------------------------------------

    fn switch_rx(&mut self, s: usize, mut pkt: Packet) {
        let now_ns = ps_to_ns(self.now);
        let sw = &mut self.switches[s];
        let port = sw.routing.port_for(pkt.dst as usize, pkt.flow);
        let class = (pkt.prio as usize).min(sw.classes - 1);
        let pa = sw.port_partition[port];
        let qidx = sw.queue_index(port, class);
        let wire = pkt.wire_bytes();
        let part = &mut sw.partitions[pa];

        match part.bm.admit(qidx, wire, &part.state) {
            Verdict::Accept => {
                self.enqueue_packet(s, port, class, pa, qidx, pkt);
                self.port_pump(s, port);
                if self.switches[s].partitions[pa].reactive {
                    self.try_expel(s, pa);
                }
            }
            Verdict::Evict => {
                // Pushout: synchronously evict from the longest queue
                // until the newcomer fits (paper §2.2).
                while self.switches[s].partitions[pa].state.free() < wire {
                    let victim = {
                        let part = &mut self.switches[s].partitions[pa];
                        part.bm.select_victim(&part.state)
                    };
                    let Some(v) = victim else { break };
                    if !self.head_drop(s, pa, v, now_ns) {
                        break;
                    }
                    self.metrics.drops.pushout_evictions += 1;
                }
                if self.switches[s].partitions[pa].state.free() >= wire {
                    self.enqueue_packet(s, port, class, pa, qidx, pkt);
                    self.port_pump(s, port);
                } else {
                    self.record_admission_drop(s, pa, false);
                }
            }
            Verdict::Drop(reason) => {
                let threshold = reason == DropReason::OverThreshold;
                self.record_admission_drop(s, pa, threshold);
                if self.switches[s].partitions[pa].reactive {
                    self.try_expel(s, pa);
                }
                let _ = &mut pkt; // dropped
            }
        }
    }

    fn enqueue_packet(
        &mut self,
        s: usize,
        port: usize,
        class: usize,
        pa: usize,
        qidx: usize,
        mut pkt: Packet,
    ) {
        let now_ns = ps_to_ns(self.now);
        let wire = pkt.wire_bytes();
        let ecn_k = self.cfg.ecn_k_bytes;
        let sw = &mut self.switches[s];
        let part = &mut sw.partitions[pa];
        part.state
            .enqueue(qidx, wire)
            .expect("BM admitted beyond capacity");
        part.bm.on_enqueue(qidx, wire, now_ns, &part.state);
        sw.write_rate.record(wire, now_ns);
        // DCTCP marking: CE when the instantaneous queue exceeds K.
        if pkt.kind == PacketKind::Data && part.state.queue_len(qidx) > ecn_k {
            pkt.ce = true;
        }
        sw.ports[port].queues[class].push_back(pkt);
    }

    fn record_admission_drop(&mut self, s: usize, pa: usize, threshold: bool) {
        let now_ns = ps_to_ns(self.now);
        let sw = &self.switches[s];
        let part = &sw.partitions[pa];
        let util = part.state.total() as f64 / part.state.capacity() as f64;
        let membw = sw.membw_util(now_ns);
        self.metrics.record_drop(threshold, util, membw);
    }

    /// Removes the head packet of partition-local queue `qidx` without
    /// transmitting it. Returns `false` if the queue was empty.
    fn head_drop(&mut self, s: usize, pa: usize, qidx: usize, now_ns: u64) -> bool {
        let (port, class) = self.switches[s].queue_location(pa, qidx);
        let sw = &mut self.switches[s];
        let Some(pkt) = sw.ports[port].queues[class].pop_front() else {
            return false;
        };
        let wire = pkt.wire_bytes();
        let part = &mut sw.partitions[pa];
        part.state
            .dequeue(qidx, wire)
            .expect("queue accounting out of sync");
        part.bm.on_dequeue(qidx, wire, now_ns, &part.state);
        // A head drop costs PD/cell-pointer bandwidth, which the token
        // bucket charges, but never touches the cell data memory, so the
        // read-rate estimator (data path) is not updated (paper §3.2).
        true
    }

    fn port_pump(&mut self, s: usize, port: usize) {
        if self.switches[s].ports[port].tx_busy {
            return;
        }
        let now = self.now;
        let now_ns = ps_to_ns(now);
        let cell = self.cfg.cell_bytes;
        let sw = &mut self.switches[s];
        let p = &mut sw.ports[port];
        let Some(class) = p.sched.pick(&p.queues) else {
            return;
        };
        let pkt = p.queues[class]
            .pop_front()
            .expect("scheduler picked an empty queue");
        let wire = pkt.wire_bytes();
        let pa = sw.port_partition[port];
        let qidx = sw.queue_index(port, class);
        let part = &mut sw.partitions[pa];
        part.state
            .dequeue(qidx, wire)
            .expect("queue accounting out of sync");
        part.bm.on_dequeue(qidx, wire, now_ns, &part.state);
        // TX has absolute priority on memory bandwidth: it may drive the
        // expulsion token balance negative (fixed-priority arbiter, §4.3).
        part.tb.force_take(wire.div_ceil(cell) as f64, now_ns);
        sw.read_rate.record(wire, now_ns);
        let link = sw.ports[port].link;
        sw.ports[port].tx_busy = true;
        let ser = tx_time_ps(wire, link.rate_bps);
        self.events
            .push(now + ser, Event::PortFree { switch: s, port });
        self.events.push(
            now + ser + link.prop_ps,
            Event::Arrive { node: link.to, pkt },
        );
    }

    /// Occamy's reactive expulsion process: head-drop from over-allocated
    /// queues while redundant memory bandwidth is available.
    fn try_expel(&mut self, s: usize, pa: usize) {
        if !self.switches[s].partitions[pa].reactive {
            return;
        }
        let now_ns = ps_to_ns(self.now);
        let cell = self.cfg.cell_bytes;
        loop {
            let victim = {
                let part = &mut self.switches[s].partitions[pa];
                part.bm.select_victim(&part.state)
            };
            let Some(v) = victim else { return };
            // Cost of expelling the head packet, in cells.
            let (port, class) = self.switches[s].queue_location(pa, v);
            let Some(head_wire) = self.switches[s].ports[port].queues[class]
                .front()
                .map(|p| p.wire_bytes())
            else {
                return;
            };
            let cells = head_wire.div_ceil(cell) as f64;
            let part = &mut self.switches[s].partitions[pa];
            if part.tb.try_take(cells, now_ns) {
                self.head_drop(s, pa, v, now_ns);
                self.metrics.drops.head_drops += 1;
            } else {
                // Not enough redundant bandwidth now: retry once the
                // bucket has refilled enough for this packet. A `None`
                // means the request can never be satisfied (zero-rate
                // ablation or a cap below one packet): leave disarmed and
                // let the next enqueue re-evaluate.
                if !part.expel_armed {
                    if let Some(wait_ns) = part.tb.time_until(cells, now_ns) {
                        part.expel_armed = true;
                        self.events.push(
                            self.now.saturating_add(wait_ns.max(1).saturating_mul(NS)),
                            Event::ExpelRetry {
                                switch: s,
                                partition: pa,
                            },
                        );
                    }
                }
                return;
            }
        }
    }

    fn sample(&mut self, switch: usize, partition: usize, interval: Ps, until: Ps) {
        let part = &self.switches[switch].partitions[partition];
        let qlens: Vec<u64> = part.state.iter().map(|(_, l)| l).collect();
        let thresholds: Vec<u64> = (0..part.state.num_queues())
            .map(|q| part.bm.threshold(q, &part.state))
            .collect();
        self.metrics.queue_samples.push(QueueSample {
            t: self.now,
            switch,
            partition,
            qlens,
            thresholds,
        });
        if self.now + interval <= until {
            self.events.push(
                self.now + interval,
                Event::Sample {
                    switch,
                    partition,
                    interval,
                    until,
                },
            );
        }
    }
}
