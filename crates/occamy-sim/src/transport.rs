//! TCP transport state machines: DCTCP, CUBIC and Reno.
//!
//! One [`FlowState`] holds both endpoints of a flow (the sender's
//! congestion state and the receiver's reassembly state); the world
//! routes data packets to the receiver half and ACKs to the sender half.
//! The models follow the standard simulation simplifications of the
//! DCTCP-lineage papers: per-packet ACKs (no delayed ACK), accurate ECE
//! echo (each ACK echoes the CE bit of the data packet it acknowledges),
//! NewReno-style fast recovery, go-back-N on RTO.

use crate::packet::{FlowId, Packet};
use crate::time::{Ps, SEC};
use crate::SimConfig;

/// Congestion-control algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgo {
    /// DCTCP (paper's default; ECN-based, g = 1/16).
    Dctcp,
    /// CUBIC (used for the low-priority background flows in §6.2).
    Cubic,
    /// TCP NewReno (context baseline).
    Reno,
}

/// CUBIC constants (RFC 8312): `C` in MSS/s³ and multiplicative decrease.
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;
/// Upper bound on the retransmission timeout.
const MAX_RTO: Ps = 60 * SEC;
/// Tail-loss probes per flight before falling back to a full RTO
/// (Linux-style TLP; without it every tail loss costs min RTO, which the
/// paper's Linux-stack testbed does not exhibit).
const MAX_TLP_PROBES: u32 = 2;
/// Probe-timeout floor.
const TLP_MIN_PTO: Ps = 1_000_000_000; // 1 ms

/// Per-flow transport and measurement state.
#[derive(Debug, Clone)]
pub struct FlowState {
    /// Flow identity (index in the world's flow table).
    pub id: FlowId,
    /// Sender host.
    pub src: u32,
    /// Receiver host.
    pub dst: u32,
    /// Total payload bytes to transfer.
    pub bytes: u64,
    /// Switch scheduling class.
    pub prio: u8,
    /// Incast query this flow belongs to (for QCT grouping).
    pub query: Option<u64>,
    /// Whether this is query-class traffic (metric slicing).
    pub is_query: bool,
    /// Scheduled start time.
    pub start_ps: Ps,
    /// Completion time (last byte ACKed), if finished.
    pub end_ps: Option<Ps>,
    /// Set once the FlowStart event fired.
    pub started: bool,
    /// Whether the flow sits in its host's ready queue.
    pub in_host_queue: bool,
    /// Whether an `Rto` event is pending in the event queue.
    pub timer_armed: bool,
    /// Soft timer deadline; firings before it reschedule themselves.
    pub rto_deadline: Ps,

    cc: CcAlgo,
    cwnd: f64,
    ssthresh: f64,
    snd_una: u64,
    snd_nxt: u64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u64,
    retx_pending: bool,
    srtt: f64,
    rttvar: f64,
    rto: Ps,
    backoff: u32,
    probes_sent: u32,
    // DCTCP.
    alpha: f64,
    ce_bytes: f64,
    acked_bytes: f64,
    window_end: u64,
    cwr_end: u64,
    // CUBIC.
    w_max: f64,
    epoch_start: Option<Ps>,
    cubic_k: f64,
    // Receiver reassembly.
    rcv_next: u64,
    ooo: Vec<(u64, u64)>,
}

impl FlowState {
    /// Creates a flow, not yet started.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: FlowId,
        src: u32,
        dst: u32,
        bytes: u64,
        prio: u8,
        start_ps: Ps,
        cc: CcAlgo,
        cfg: &SimConfig,
    ) -> Self {
        let mss = cfg.mss as f64;
        FlowState {
            id,
            src,
            dst,
            bytes,
            prio,
            query: None,
            is_query: false,
            start_ps,
            end_ps: None,
            started: false,
            in_host_queue: false,
            timer_armed: false,
            rto_deadline: 0,
            cc,
            cwnd: cfg.init_cwnd_mss as f64 * mss,
            ssthresh: f64::MAX,
            snd_una: 0,
            snd_nxt: 0,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            retx_pending: false,
            srtt: 0.0,
            rttvar: 0.0,
            rto: cfg.min_rto,
            backoff: 0,
            probes_sent: 0,
            alpha: 1.0, // conservative start, per the DCTCP paper
            ce_bytes: 0.0,
            acked_bytes: 0.0,
            window_end: 0,
            cwr_end: 0,
            w_max: 0.0,
            epoch_start: None,
            cubic_k: 0.0,
            rcv_next: 0,
            ooo: Vec::new(),
        }
    }

    /// Whether the flow has delivered (and had ACKed) every byte.
    pub fn done(&self) -> bool {
        self.end_ps.is_some()
    }

    /// Congestion window in bytes (diagnostics).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// DCTCP's congestion estimate α (diagnostics).
    pub fn dctcp_alpha(&self) -> f64 {
        self.alpha
    }

    /// Bytes in flight.
    pub fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Whether unacknowledged data exists (RTO timer should be armed).
    pub fn outstanding(&self) -> bool {
        !self.done() && self.snd_una < self.snd_nxt
    }

    /// Current timeout with exponential backoff applied.
    pub fn current_rto(&self) -> Ps {
        self.rto
            .saturating_mul(1u64 << self.backoff.min(10))
            .min(MAX_RTO)
    }

    /// Probe timeout for tail-loss probes: `2·SRTT + 4·RTTVAR`, floored
    /// at 1 ms and capped at the full RTO.
    pub fn pto(&self, cfg: &SimConfig) -> Ps {
        if self.srtt == 0.0 {
            return TLP_MIN_PTO.min(cfg.min_rto);
        }
        let pto = (2.0 * self.srtt + 4.0 * self.rttvar) as Ps;
        pto.clamp(TLP_MIN_PTO, self.current_rto())
    }

    /// Delay until the retransmission timer should next fire: the probe
    /// timeout while probes remain, the full RTO afterwards.
    pub fn timer_delay(&self, cfg: &SimConfig) -> Ps {
        if self.probes_sent < MAX_TLP_PROBES {
            self.pto(cfg)
        } else {
            self.current_rto()
        }
    }

    /// Handles the retransmission timer firing. While probes remain, a
    /// tail-loss probe retransmits the `snd_una` segment without touching
    /// the congestion state; once exhausted, a full RTO fires
    /// ([`FlowState::on_rto`]). Returns `true` if this was a full RTO.
    pub fn on_timer(&mut self, cfg: &SimConfig) -> bool {
        if self.done() || !self.outstanding() {
            return false;
        }
        if self.probes_sent < MAX_TLP_PROBES {
            self.probes_sent += 1;
            self.retx_pending = true;
            false
        } else {
            self.on_rto(cfg);
            true
        }
    }

    /// Whether the sender may emit a segment right now.
    pub fn can_send(&self) -> bool {
        if self.done() || !self.started {
            return false;
        }
        if self.retx_pending {
            return true;
        }
        self.snd_nxt < self.bytes && (self.inflight() as f64) < self.cwnd
    }

    /// Produces the next segment to transmit.
    ///
    /// # Panics
    ///
    /// Panics if called when [`FlowState::can_send`] is false.
    pub fn next_segment(&mut self, now: Ps, cfg: &SimConfig) -> Packet {
        assert!(self.can_send(), "flow {} cannot send", self.id);
        let mss = cfg.mss as u64;
        let (seq, len) = if self.retx_pending {
            self.retx_pending = false;
            (self.snd_una, mss.min(self.bytes - self.snd_una))
        } else {
            let seq = self.snd_nxt;
            let len = mss.min(self.bytes - seq);
            self.snd_nxt += len;
            (seq, len)
        };
        Packet::data(self.id, self.src, self.dst, seq, len as u32, self.prio, now)
    }

    /// Receiver half: accepts a data segment, returns the cumulative ACK
    /// to send back.
    pub fn on_data(&mut self, seq: u64, len: u64) -> u64 {
        let end = seq + len;
        if seq <= self.rcv_next {
            self.rcv_next = self.rcv_next.max(end);
            // Absorb any out-of-order intervals now contiguous.
            while let Some(&(s, e)) = self.ooo.first() {
                if s <= self.rcv_next {
                    self.rcv_next = self.rcv_next.max(e);
                    self.ooo.remove(0);
                } else {
                    break;
                }
            }
        } else {
            // Insert-merge into the sorted disjoint interval list.
            let pos = self.ooo.partition_point(|&(s, _)| s < seq);
            self.ooo.insert(pos, (seq, end));
            let mut i = pos.saturating_sub(1);
            while i + 1 < self.ooo.len() {
                if self.ooo[i].1 >= self.ooo[i + 1].0 {
                    self.ooo[i].1 = self.ooo[i].1.max(self.ooo[i + 1].1);
                    self.ooo.remove(i + 1);
                } else {
                    i += 1;
                }
            }
        }
        self.rcv_next
    }

    /// Sender half: processes a cumulative ACK. Returns `true` if the
    /// flow completed on this ACK.
    pub fn on_ack(&mut self, ack: u64, ece: bool, echo_ts: Ps, now: Ps, cfg: &SimConfig) -> bool {
        if self.done() {
            return false;
        }
        let mss = cfg.mss as f64;
        if ack > self.snd_una {
            let newly = (ack - self.snd_una) as f64;
            self.snd_una = ack;
            // A late ACK (sent before an RTO's go-back-N) can advance
            // `snd_una` past the reset `snd_nxt`.
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.dup_acks = 0;
            self.probes_sent = 0;
            self.update_rtt(now.saturating_sub(echo_ts), cfg);
            // DCTCP fraction bookkeeping.
            self.acked_bytes += newly;
            if ece {
                self.ce_bytes += newly;
            }
            if self.in_recovery {
                if ack >= self.recover {
                    self.in_recovery = false;
                } else {
                    // NewReno partial ACK: retransmit the next hole.
                    self.retx_pending = true;
                }
            } else {
                // Linux-style prompt ECN response: the first ECE of a
                // window enters CWR and reduces cwnd immediately (rather
                // than waiting for the window boundary), which is what
                // keeps slow-start incast from blowing through the buffer.
                if self.cc == CcAlgo::Dctcp && ece && ack > self.cwr_end {
                    self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(mss);
                    self.ssthresh = self.cwnd;
                    self.cwr_end = self.snd_nxt;
                } else {
                    self.grow(newly, now, cfg);
                }
            }
            if self.cc == CcAlgo::Dctcp && ack >= self.window_end {
                self.dctcp_window_boundary(cfg);
            }
            if self.snd_una >= self.bytes {
                self.end_ps = Some(now);
                return true;
            }
        } else if ack == self.snd_una && self.outstanding() {
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                self.enter_recovery(mss);
            }
        }
        false
    }

    fn update_rtt(&mut self, rtt: Ps, cfg: &SimConfig) {
        let rtt = rtt as f64;
        if self.srtt == 0.0 {
            self.srtt = rtt;
            self.rttvar = rtt / 2.0;
        } else {
            self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - rtt).abs();
            self.srtt = 0.875 * self.srtt + 0.125 * rtt;
        }
        let rto = (self.srtt + 4.0 * self.rttvar) as Ps;
        self.rto = rto.max(cfg.min_rto);
        self.backoff = 0;
    }

    fn grow(&mut self, newly: f64, now: Ps, cfg: &SimConfig) {
        let mss = cfg.mss as f64;
        if self.cwnd < self.ssthresh {
            self.cwnd += newly; // slow start
            return;
        }
        match self.cc {
            CcAlgo::Dctcp | CcAlgo::Reno => {
                self.cwnd += mss * newly / self.cwnd;
            }
            CcAlgo::Cubic => self.cubic_grow(now, mss),
        }
    }

    fn cubic_grow(&mut self, now: Ps, mss: f64) {
        let epoch = *self.epoch_start.get_or_insert_with(|| {
            let w_max_mss = (self.w_max / mss).max(self.cwnd / mss);
            self.cubic_k = (w_max_mss * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
            now
        });
        let t = (now - epoch) as f64 / SEC as f64;
        let w_max_mss = (self.w_max / mss).max(1.0);
        let target = CUBIC_C * (t - self.cubic_k).powi(3) + w_max_mss;
        let cwnd_mss = self.cwnd / mss;
        if target > cwnd_mss {
            self.cwnd += mss * (target - cwnd_mss) / cwnd_mss;
        } else {
            // TCP-friendly floor: grow at least Reno-like.
            self.cwnd += 0.1 * mss * mss / self.cwnd;
        }
    }

    fn dctcp_window_boundary(&mut self, cfg: &SimConfig) {
        // Only α estimation happens here; the cwnd reduction itself is
        // applied promptly by the CWR logic in `on_ack`.
        if self.acked_bytes > 0.0 {
            let f = self.ce_bytes / self.acked_bytes;
            self.alpha = (1.0 - cfg.dctcp_g) * self.alpha + cfg.dctcp_g * f;
        }
        self.ce_bytes = 0.0;
        self.acked_bytes = 0.0;
        self.window_end = self.snd_nxt;
    }

    fn enter_recovery(&mut self, mss: f64) {
        self.in_recovery = true;
        self.recover = self.snd_nxt;
        self.retx_pending = true;
        match self.cc {
            CcAlgo::Dctcp | CcAlgo::Reno => {
                let inflight = self.inflight() as f64;
                self.ssthresh = (inflight / 2.0).max(2.0 * mss);
                self.cwnd = self.ssthresh;
            }
            CcAlgo::Cubic => {
                self.w_max = self.cwnd;
                self.cwnd = (self.cwnd * CUBIC_BETA).max(2.0 * mss);
                self.ssthresh = self.cwnd;
                self.epoch_start = None;
            }
        }
    }

    /// Handles a retransmission timeout: collapse to one MSS and resend
    /// everything from `snd_una` (go-back-N).
    pub fn on_rto(&mut self, cfg: &SimConfig) {
        if self.done() || !self.outstanding() {
            return;
        }
        let mss = cfg.mss as f64;
        match self.cc {
            CcAlgo::Dctcp | CcAlgo::Reno => {
                self.ssthresh = (self.inflight() as f64 / 2.0).max(2.0 * mss);
            }
            CcAlgo::Cubic => {
                self.w_max = self.cwnd;
                self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0 * mss);
                self.epoch_start = None;
            }
        }
        self.cwnd = mss;
        self.snd_nxt = self.snd_una;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.retx_pending = false;
        self.window_end = self.snd_nxt;
        self.backoff = (self.backoff + 1).min(10);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MS, US};

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    fn flow(bytes: u64, cc: CcAlgo) -> FlowState {
        let mut f = FlowState::new(0, 0, 1, bytes, 0, 0, cc, &cfg());
        f.started = true;
        f
    }

    /// Drives a lossless transfer: sender emits, receiver acks, with a
    /// fixed RTT. Returns the ACK count needed to finish.
    fn run_lossless(f: &mut FlowState, rtt: Ps) -> u32 {
        let c = cfg();
        let mut now = 0;
        let mut acks = 0;
        for _ in 0..100_000 {
            // Emit everything the window allows.
            let mut pkts = Vec::new();
            while f.can_send() {
                pkts.push(f.next_segment(now, &c));
            }
            now += rtt;
            for p in pkts {
                let ack = f.on_data(p.seq, p.len as u64);
                acks += 1;
                if f.on_ack(ack, false, p.ts, now, &c) {
                    return acks;
                }
            }
        }
        panic!("transfer did not finish");
    }

    #[test]
    fn small_flow_completes_in_initial_window() {
        let mut f = flow(10_000, CcAlgo::Dctcp);
        let acks = run_lossless(&mut f, 100 * US);
        assert!(f.done());
        assert_eq!(f.end_ps, Some(100 * US));
        assert_eq!(acks, 7); // ceil(10000/1460)
    }

    #[test]
    fn slow_start_doubles_cwnd_per_rtt() {
        let c = cfg();
        let mut f = flow(10_000_000, CcAlgo::Dctcp);
        let w0 = f.cwnd();
        let mut now = 0;
        // One RTT of ACK clocking: every in-flight byte acknowledged.
        let mut pkts = Vec::new();
        while f.can_send() {
            pkts.push(f.next_segment(now, &c));
        }
        now += 100 * US;
        for p in &pkts {
            let ack = f.on_data(p.seq, p.len as u64);
            f.on_ack(ack, false, p.ts, now, &c);
        }
        assert!(
            (f.cwnd() - 2.0 * w0).abs() < c.mss as f64,
            "cwnd {} not ~2×{}",
            f.cwnd(),
            w0
        );
    }

    #[test]
    fn large_flow_completes() {
        let mut f = flow(2_000_000, CcAlgo::Dctcp);
        run_lossless(&mut f, 80 * US);
        assert!(f.done());
    }

    #[test]
    fn dctcp_alpha_rises_with_marks_and_cuts_window() {
        let c = cfg();
        let mut f = flow(50_000_000, CcAlgo::Dctcp);
        // Push out of slow start first.
        f.ssthresh = 0.0;
        let mut now = 0;
        // All ACKs carry ECE for several windows: α → 1.
        for _ in 0..20 {
            let mut pkts = Vec::new();
            while f.can_send() {
                pkts.push(f.next_segment(now, &c));
            }
            now += 100 * US;
            for p in &pkts {
                let ack = f.on_data(p.seq, p.len as u64);
                f.on_ack(ack, true, p.ts, now, &c);
            }
        }
        assert!(
            f.dctcp_alpha() > 0.9,
            "alpha {} should approach 1",
            f.dctcp_alpha()
        );
        // And the window collapsed towards its floor.
        assert!(f.cwnd() < 4.0 * c.mss as f64, "cwnd {} not cut", f.cwnd());
        assert!(f.dctcp_alpha() <= 1.0 + 1e-9);
    }

    #[test]
    fn dctcp_alpha_decays_without_marks() {
        let c = cfg();
        let mut f = flow(50_000_000, CcAlgo::Dctcp);
        // Congestion avoidance keeps per-RTT packet counts small so the
        // flow spans 40 window boundaries: α = (15/16)⁴⁰ ≈ 0.076.
        f.ssthresh = 0.0;
        let mut now = 0;
        for _ in 0..40 {
            let mut pkts = Vec::new();
            while f.can_send() {
                pkts.push(f.next_segment(now, &c));
            }
            now += 100 * US;
            for p in &pkts {
                let ack = f.on_data(p.seq, p.len as u64);
                f.on_ack(ack, false, p.ts, now, &c);
            }
        }
        assert!(
            f.dctcp_alpha() < 0.1,
            "alpha {} should decay toward 0",
            f.dctcp_alpha()
        );
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let c = cfg();
        let mut f = flow(1_000_000, CcAlgo::Dctcp);
        let mut pkts = Vec::new();
        while f.can_send() {
            pkts.push(f.next_segment(0, &c));
        }
        assert!(pkts.len() >= 5);
        // First packet lost: receiver sees 1..4, acks stay at 0.
        let cwnd_before = f.cwnd();
        for p in &pkts[1..4] {
            let ack = f.on_data(p.seq, p.len as u64);
            assert_eq!(ack, 0, "cumulative ack must not advance");
            f.on_ack(ack, false, p.ts, 10 * US, &c);
        }
        // Third dupack: recovery entered, retransmission pending.
        assert!(f.can_send(), "retransmit must be pending");
        let rtx = f.next_segment(11 * US, &c);
        assert_eq!(rtx.seq, 0, "must retransmit the hole");
        assert!(f.cwnd() < cwnd_before, "window must shrink on loss");
    }

    #[test]
    fn recovery_completes_on_full_ack() {
        let c = cfg();
        let mut f = flow(100_000, CcAlgo::Dctcp);
        let mut pkts = Vec::new();
        while f.can_send() {
            pkts.push(f.next_segment(0, &c));
        }
        // Lose packet 0; deliver the rest.
        for p in &pkts[1..] {
            let ack = f.on_data(p.seq, p.len as u64);
            f.on_ack(ack, false, p.ts, 10 * US, &c);
        }
        // Retransmit and deliver the hole: cumulative ack jumps to the end
        // of all received data.
        let rtx = f.next_segment(20 * US, &c);
        let ack = f.on_data(rtx.seq, rtx.len as u64);
        assert!(ack > rtx.len as u64, "ack must jump past the hole");
        f.on_ack(ack, false, rtx.ts, 30 * US, &c);
        assert!(!f.in_recovery);
    }

    #[test]
    fn rto_collapses_to_one_mss_and_goes_back_n() {
        let c = cfg();
        let mut f = flow(1_000_000, CcAlgo::Dctcp);
        let mut n = 0;
        while f.can_send() {
            f.next_segment(0, &c);
            n += 1;
        }
        assert!(n >= 10);
        f.on_rto(&c);
        assert_eq!(f.cwnd(), c.mss as f64);
        assert_eq!(f.inflight(), 0, "go-back-N resets snd_nxt");
        assert!(f.can_send());
        let p = f.next_segment(MS, &c);
        assert_eq!(p.seq, 0);
        // Backoff doubles the effective RTO.
        assert_eq!(f.current_rto(), 2 * c.min_rto);
    }

    #[test]
    fn receiver_merges_out_of_order_segments() {
        let mut f = flow(10_000, CcAlgo::Dctcp);
        assert_eq!(f.on_data(2_000, 1_000), 0);
        assert_eq!(f.on_data(4_000, 1_000), 0);
        assert_eq!(f.on_data(1_000, 1_000), 0);
        assert_eq!(f.on_data(0, 1_000), 3_000); // 0..3000 contiguous
        assert_eq!(f.on_data(3_000, 1_000), 5_000); // absorbs 4000..5000
    }

    #[test]
    fn receiver_handles_duplicates_and_overlaps() {
        let mut f = flow(10_000, CcAlgo::Dctcp);
        assert_eq!(f.on_data(0, 1_000), 1_000);
        assert_eq!(f.on_data(0, 1_000), 1_000); // exact duplicate
        assert_eq!(f.on_data(500, 1_000), 1_500); // overlapping
        assert_eq!(f.on_data(3_000, 500), 1_500);
        assert_eq!(f.on_data(3_200, 800), 1_500); // overlap in OOO space
        assert_eq!(f.on_data(1_500, 1_500), 4_000);
    }

    #[test]
    fn cubic_cuts_by_beta_on_loss() {
        let c = cfg();
        let mut f = flow(10_000_000, CcAlgo::Cubic);
        f.ssthresh = 0.0; // force congestion avoidance
        f.cwnd = 100.0 * c.mss as f64;
        let mut pkts = Vec::new();
        while f.can_send() {
            pkts.push(f.next_segment(0, &c));
        }
        let before = f.cwnd();
        for p in &pkts[1..4] {
            let ack = f.on_data(p.seq, p.len as u64);
            f.on_ack(ack, false, p.ts, 10 * US, &c);
        }
        assert!(
            (f.cwnd() - CUBIC_BETA * before).abs() < 1.0,
            "cwnd {} != 0.7 × {}",
            f.cwnd(),
            before
        );
    }

    #[test]
    fn cubic_grows_toward_w_max() {
        let c = cfg();
        let mut f = flow(100_000_000, CcAlgo::Cubic);
        f.ssthresh = 0.0;
        f.cwnd = 50.0 * c.mss as f64;
        f.w_max = 100.0 * c.mss as f64;
        let mut now = 0;
        for _ in 0..400 {
            let mut pkts = Vec::new();
            while f.can_send() {
                pkts.push(f.next_segment(now, &c));
            }
            now += 10 * MS;
            for p in &pkts {
                let ack = f.on_data(p.seq, p.len as u64);
                f.on_ack(ack, false, p.ts, now, &c);
            }
        }
        let w_mss = f.cwnd() / c.mss as f64;
        assert!(w_mss > 90.0, "CUBIC stalled at {w_mss} MSS");
    }

    #[test]
    fn rtt_estimation_sets_rto() {
        let c = cfg();
        let mut f = flow(1_000_000, CcAlgo::Dctcp);
        let p = f.next_segment(0, &c);
        let ack = f.on_data(p.seq, p.len as u64);
        f.on_ack(ack, false, p.ts, 500 * US, &c);
        // RTO floors at min_rto despite the small RTT.
        assert_eq!(f.current_rto(), c.min_rto);
        assert!(f.srtt > 0.0);
    }

    #[test]
    fn unstarted_flow_cannot_send() {
        let mut f = FlowState::new(0, 0, 1, 1_000, 0, 0, CcAlgo::Dctcp, &cfg());
        assert!(!f.can_send());
        f.started = true;
        assert!(f.can_send());
    }
}
