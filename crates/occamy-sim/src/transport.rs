//! TCP transport state machines: DCTCP, CUBIC and Reno.
//!
//! One flow holds both endpoints (the sender's congestion state and the
//! receiver's reassembly state); the world routes data packets to the
//! receiver half and ACKs to the sender half. The models follow the
//! standard simulation simplifications of the DCTCP-lineage papers:
//! per-packet ACKs (no delayed ACK), accurate ECE echo (each ACK echoes
//! the CE bit of the data packet it acknowledges), NewReno-style fast
//! recovery, go-back-N on RTO.
//!
//! # Hot/cold state split
//!
//! Flow state is split for the per-ACK fast path. [`FlowHot`] packs the
//! fields every `on_ack`/`next_segment` touches — sequence and window
//! state, RTT estimators, timer state, the DCTCP fraction counters and
//! the flow identity a segment needs — into one compact struct the
//! world stores as a dense array ([`FlowTable`]), so an ACK touches a
//! couple of cache lines instead of walking a pointer-bearing
//! struct-of-everything. [`FlowCold`] keeps the sender-side state the
//! fast path does not read: CUBIC epoch state and completion/query
//! bookkeeping. [`FlowRx`] isolates the receiver's reassembly state
//! (`rcv_next` plus the out-of-order interval list) — it is the only
//! flow state the *destination* host touches, which is what lets the
//! parallel executor give the sender's domain the hot/cold halves and
//! the receiver's domain the rx half without sharing. [`FlowState`]
//! bundles one hot/cold/rx triple for tests and single-flow callers.
//!
//! [`TransportConsts`] caches the `SimConfig`-derived per-packet
//! constants (`mss` as `f64`, the initial window in bytes, PTO bases)
//! once per world, so the handlers repeat no conversions. The cached
//! values are bit-identical to the originals — results do not change.

use crate::packet::{FlowId, Packet};
use crate::time::{Ps, SEC};
use crate::SimConfig;
use std::collections::VecDeque;

/// Congestion-control algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgo {
    /// DCTCP (paper's default; ECN-based, g = 1/16).
    Dctcp,
    /// CUBIC (used for the low-priority background flows in §6.2).
    Cubic,
    /// TCP NewReno (context baseline).
    Reno,
}

/// CUBIC constants (RFC 8312): `C` in MSS/s³ and multiplicative decrease.
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;
/// Upper bound on the retransmission timeout.
const MAX_RTO: Ps = 60 * SEC;
/// Tail-loss probes per flight before falling back to a full RTO
/// (Linux-style TLP; without it every tail loss costs min RTO, which the
/// paper's Linux-stack testbed does not exhibit).
const MAX_TLP_PROBES: u32 = 2;
/// Probe-timeout floor.
const TLP_MIN_PTO: Ps = 1_000_000_000; // 1 ms

/// Per-world cache of the `SimConfig`-derived constants the transport
/// handlers use on every packet. Derived once (`World::new`), so the
/// fast path never repeats an integer→float conversion or a `min` of
/// two configuration constants.
#[derive(Debug, Clone, Copy)]
pub struct TransportConsts {
    /// MSS in bytes.
    pub mss: u64,
    /// MSS as `f64` (the exact value of `cfg.mss as f64`).
    pub mss_f: f64,
    /// Initial congestion window in bytes
    /// (`cfg.init_cwnd_mss as f64 * cfg.mss as f64`, bit-exact).
    pub init_cwnd: f64,
    /// Minimum retransmission timeout.
    pub min_rto: Ps,
    /// Probe timeout used before the first RTT sample:
    /// `TLP_MIN_PTO.min(min_rto)`.
    pub pto_seed: Ps,
    /// DCTCP gain `g`.
    pub dctcp_g: f64,
}

impl TransportConsts {
    /// Derives the constants from a configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        let mss_f = cfg.mss as f64;
        TransportConsts {
            mss: cfg.mss as u64,
            mss_f,
            init_cwnd: cfg.init_cwnd_mss as f64 * mss_f,
            min_rto: cfg.min_rto,
            pto_seed: TLP_MIN_PTO.min(cfg.min_rto),
            dctcp_g: cfg.dctcp_g,
        }
    }
}

/// [`FlowHot`] flag bits.
mod flag {
    pub const STARTED: u8 = 1 << 0;
    pub const IN_HOST_QUEUE: u8 = 1 << 1;
    pub const TIMER_ARMED: u8 = 1 << 2;
    pub const RETX_PENDING: u8 = 1 << 3;
    pub const IN_RECOVERY: u8 = 1 << 4;
    pub const DONE: u8 = 1 << 5;
    /// Source host left the fabric (fault injection): the flow is
    /// frozen until a `HostJoin` resumes it.
    pub const KILLED: u8 = 1 << 6;
}

/// The per-ACK sender state of one flow: everything `on_ack`,
/// `can_send` and `next_segment` touch, packed densely (no heap
/// pointers, no `Option` words) so the world's hot array stays
/// cache-friendly. See the module doc for the split rationale.
#[derive(Debug, Clone)]
pub struct FlowHot {
    /// Flow identity (index in the world's flow table).
    pub id: FlowId,
    /// Sender host.
    pub src: u32,
    /// Receiver host.
    pub dst: u32,
    /// Switch scheduling class.
    pub prio: u8,
    /// State flags (started / queued / timer / recovery / done).
    flags: u8,
    cc: CcAlgo,
    dup_acks: u32,
    backoff: u32,
    probes_sent: u32,
    /// Total payload bytes to transfer.
    pub bytes: u64,
    cwnd: f64,
    ssthresh: f64,
    snd_una: u64,
    snd_nxt: u64,
    recover: u64,
    srtt: f64,
    rttvar: f64,
    rto: Ps,
    /// Soft timer deadline; firings before it reschedule themselves.
    pub rto_deadline: Ps,
    // DCTCP fraction estimator (advanced on every ACK).
    alpha: f64,
    ce_bytes: f64,
    acked_bytes: f64,
    window_end: u64,
    cwr_end: u64,
    /// Highest byte offset ever emitted; segments ending at or below it
    /// are retransmissions (TLP probes, fast retransmits, go-back-N).
    high_water: u64,
    /// Retransmitted segments emitted (resilience metric).
    retx_pkts: u32,
    /// Full retransmission timeouts fired (probes excluded).
    rto_fires: u32,
}

/// The sender-side state the per-ACK path does not read: CUBIC epoch
/// state and completion/query bookkeeping. Owned, like [`FlowHot`], by
/// the *source* host's event domain.
#[derive(Debug, Clone, Default)]
pub struct FlowCold {
    /// Incast query this flow belongs to (for QCT grouping).
    pub query: Option<u64>,
    /// Whether this is query-class traffic (metric slicing).
    pub is_query: bool,
    /// Scheduled start time.
    pub start_ps: Ps,
    /// Completion time (last byte ACKed), if finished.
    pub end_ps: Option<Ps>,
    /// First moment the transfer was interrupted — the first full RTO
    /// or host-leave kill. `end_ps − first_interrupt_ps` is the flow's
    /// recovery time when it still completes.
    pub first_interrupt_ps: Option<Ps>,
    // CUBIC.
    w_max: f64,
    epoch_start: Option<Ps>,
    cubic_k: f64,
}

/// The receiver half of one flow: cumulative-ACK reassembly state. Only
/// the *destination* host's data-arrival handler touches it, so the
/// parallel executor hands it to the receiver's event domain while the
/// hot/cold halves stay with the sender's.
#[derive(Debug, Clone, Default)]
pub struct FlowRx {
    /// Receiver reassembly: next expected byte.
    pub rcv_next: u64,
    /// Disjoint, sorted out-of-order intervals. A deque, because the
    /// common event — the hole fills and the head intervals become
    /// contiguous — pops from the front; a `Vec` made that O(n) per
    /// absorbed interval (quadratic under pathological reordering).
    ooo: VecDeque<(u64, u64)>,
}

impl FlowHot {
    /// Creates a flow's hot half, not yet started.
    pub fn new(
        id: FlowId,
        src: u32,
        dst: u32,
        bytes: u64,
        prio: u8,
        cc: CcAlgo,
        c: &TransportConsts,
    ) -> Self {
        FlowHot {
            id,
            src,
            dst,
            prio,
            flags: 0,
            cc,
            dup_acks: 0,
            backoff: 0,
            probes_sent: 0,
            bytes,
            cwnd: c.init_cwnd,
            ssthresh: f64::MAX,
            snd_una: 0,
            snd_nxt: 0,
            recover: 0,
            srtt: 0.0,
            rttvar: 0.0,
            rto: c.min_rto,
            rto_deadline: 0,
            alpha: 1.0, // conservative start, per the DCTCP paper
            ce_bytes: 0.0,
            acked_bytes: 0.0,
            window_end: 0,
            cwr_end: 0,
            high_water: 0,
            retx_pkts: 0,
            rto_fires: 0,
        }
    }

    #[inline]
    fn flag(&self, f: u8) -> bool {
        self.flags & f != 0
    }

    #[inline]
    fn set_flag(&mut self, f: u8, on: bool) {
        if on {
            self.flags |= f;
        } else {
            self.flags &= !f;
        }
    }

    /// Whether the FlowStart event fired.
    pub fn started(&self) -> bool {
        self.flag(flag::STARTED)
    }

    /// Marks the flow started (the FlowStart handler).
    pub fn set_started(&mut self, on: bool) {
        self.set_flag(flag::STARTED, on);
    }

    /// Whether the flow sits in its host's ready queue.
    pub fn in_host_queue(&self) -> bool {
        self.flag(flag::IN_HOST_QUEUE)
    }

    /// Sets the host-queue membership flag.
    pub fn set_in_host_queue(&mut self, on: bool) {
        self.set_flag(flag::IN_HOST_QUEUE, on);
    }

    /// Whether an `Rto` event is pending in the event queue.
    pub fn timer_armed(&self) -> bool {
        self.flag(flag::TIMER_ARMED)
    }

    /// Sets the pending-timer flag.
    pub fn set_timer_armed(&mut self, on: bool) {
        self.set_flag(flag::TIMER_ARMED, on);
    }

    /// Whether the flow is in NewReno fast recovery (diagnostics).
    pub fn in_recovery(&self) -> bool {
        self.flag(flag::IN_RECOVERY)
    }

    /// Whether the flow has delivered (and had ACKed) every byte.
    pub fn done(&self) -> bool {
        self.flag(flag::DONE)
    }

    /// Whether the flow is frozen because its source host left the
    /// fabric (fault injection).
    pub fn killed(&self) -> bool {
        self.flag(flag::KILLED)
    }

    /// Freezes the flow when its source host leaves: it stops sending
    /// and ignores ACKs and timers until [`FlowHot::resume`].
    pub fn kill(&mut self) {
        self.set_flag(flag::KILLED, true);
        self.set_flag(flag::IN_HOST_QUEUE, false);
        self.set_flag(flag::RETX_PENDING, false);
        self.set_flag(flag::IN_RECOVERY, false);
    }

    /// Re-arms a killed flow when its source host rejoins: fresh
    /// congestion state, transmission restarting from `snd_una` (the
    /// receiver's reassembly state is still valid, so duplicate bytes
    /// deduplicate and the transfer completes with exact byte counts).
    pub fn resume(&mut self, c: &TransportConsts) {
        self.set_flag(flag::KILLED, false);
        if self.done() {
            return;
        }
        self.cwnd = c.init_cwnd;
        self.ssthresh = f64::MAX;
        self.dup_acks = 0;
        self.backoff = 0;
        self.probes_sent = 0;
        self.snd_nxt = self.snd_una;
        self.window_end = self.snd_nxt;
        self.ce_bytes = 0.0;
        self.acked_bytes = 0.0;
    }

    /// Retransmitted segments emitted so far (resilience metric).
    pub fn retransmissions(&self) -> u64 {
        self.retx_pkts as u64
    }

    /// Full retransmission timeouts fired so far (probes excluded).
    pub fn rto_fires(&self) -> u64 {
        self.rto_fires as u64
    }

    /// Congestion window in bytes (diagnostics).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// DCTCP's congestion estimate α (diagnostics).
    pub fn dctcp_alpha(&self) -> f64 {
        self.alpha
    }

    /// Smoothed RTT estimate in ps (0 before the first sample).
    pub fn srtt(&self) -> f64 {
        self.srtt
    }

    /// Bytes in flight.
    pub fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Whether unacknowledged data exists (RTO timer should be armed).
    pub fn outstanding(&self) -> bool {
        !self.done() && self.snd_una < self.snd_nxt
    }

    /// Current timeout with exponential backoff applied.
    pub fn current_rto(&self) -> Ps {
        self.rto
            .saturating_mul(1u64 << self.backoff.min(10))
            .min(MAX_RTO)
    }

    /// Probe timeout for tail-loss probes: `2·SRTT + 4·RTTVAR`, floored
    /// at 1 ms and capped at the full RTO.
    pub fn pto(&self, c: &TransportConsts) -> Ps {
        if self.srtt == 0.0 {
            return c.pto_seed;
        }
        let pto = (2.0 * self.srtt + 4.0 * self.rttvar) as Ps;
        pto.clamp(TLP_MIN_PTO, self.current_rto())
    }

    /// Delay until the retransmission timer should next fire: the probe
    /// timeout while probes remain, the full RTO afterwards.
    pub fn timer_delay(&self, c: &TransportConsts) -> Ps {
        if self.probes_sent < MAX_TLP_PROBES {
            self.pto(c)
        } else {
            self.current_rto()
        }
    }

    /// Handles the retransmission timer firing. While probes remain, a
    /// tail-loss probe retransmits the `snd_una` segment without touching
    /// the congestion state; once exhausted, a full RTO fires
    /// ([`FlowHot::on_rto`]). Returns `true` if this was a full RTO.
    pub fn on_timer(&mut self, cold: &mut FlowCold, c: &TransportConsts) -> bool {
        if self.done() || !self.outstanding() {
            return false;
        }
        if self.probes_sent < MAX_TLP_PROBES {
            self.probes_sent += 1;
            self.set_flag(flag::RETX_PENDING, true);
            false
        } else {
            self.rto_fires += 1;
            self.on_rto(cold, c);
            true
        }
    }

    /// Whether the sender may emit a segment right now.
    pub fn can_send(&self) -> bool {
        // One branch for the common blockers: finished, unstarted,
        // killed, or no retransmission pending (then window/backlog
        // decide).
        if self.flags & (flag::DONE | flag::STARTED | flag::KILLED) != flag::STARTED {
            return false;
        }
        if self.flag(flag::RETX_PENDING) {
            return true;
        }
        self.snd_nxt < self.bytes && (self.inflight() as f64) < self.cwnd
    }

    /// Produces the next segment to transmit.
    ///
    /// # Panics
    ///
    /// Panics if called when [`FlowHot::can_send`] is false.
    pub fn next_segment(&mut self, now: Ps, c: &TransportConsts) -> Packet {
        assert!(self.can_send(), "flow {} cannot send", self.id);
        let mss = c.mss;
        let (seq, len) = if self.flag(flag::RETX_PENDING) {
            self.set_flag(flag::RETX_PENDING, false);
            (self.snd_una, mss.min(self.bytes - self.snd_una))
        } else {
            let seq = self.snd_nxt;
            let len = mss.min(self.bytes - seq);
            self.snd_nxt += len;
            (seq, len)
        };
        // Segment boundaries are MSS-aligned, so "ends at or below the
        // high-water mark" classifies every resend exactly.
        let end = seq + len;
        if end <= self.high_water {
            self.retx_pkts += 1;
        } else {
            self.high_water = end;
        }
        Packet::data(self.id, self.src, self.dst, seq, len as u32, self.prio, now)
    }

    /// Sender half: processes a cumulative ACK. Returns `true` if the
    /// flow completed on this ACK. Touches `cold` only on completion and
    /// for CUBIC window growth.
    pub fn on_ack(
        &mut self,
        cold: &mut FlowCold,
        ack: u64,
        ece: bool,
        echo_ts: Ps,
        now: Ps,
        c: &TransportConsts,
    ) -> bool {
        if self.flags & (flag::DONE | flag::KILLED) != 0 {
            return false;
        }
        if ack > self.snd_una {
            let newly = (ack - self.snd_una) as f64;
            self.snd_una = ack;
            // A late ACK (sent before an RTO's go-back-N) can advance
            // `snd_una` past the reset `snd_nxt`.
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.dup_acks = 0;
            self.probes_sent = 0;
            self.update_rtt(now.saturating_sub(echo_ts), c);
            // DCTCP fraction bookkeeping.
            self.acked_bytes += newly;
            if ece {
                self.ce_bytes += newly;
            }
            if self.flag(flag::IN_RECOVERY) {
                if ack >= self.recover {
                    self.set_flag(flag::IN_RECOVERY, false);
                } else {
                    // NewReno partial ACK: retransmit the next hole.
                    self.set_flag(flag::RETX_PENDING, true);
                }
            } else {
                // Linux-style prompt ECN response: the first ECE of a
                // window enters CWR and reduces cwnd immediately (rather
                // than waiting for the window boundary), which is what
                // keeps slow-start incast from blowing through the buffer.
                if self.cc == CcAlgo::Dctcp && ece && ack > self.cwr_end {
                    self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(c.mss_f);
                    self.ssthresh = self.cwnd;
                    self.cwr_end = self.snd_nxt;
                } else {
                    self.grow(cold, newly, now, c);
                }
            }
            if self.cc == CcAlgo::Dctcp && ack >= self.window_end {
                self.dctcp_window_boundary(c);
            }
            if self.snd_una >= self.bytes {
                self.set_flag(flag::DONE, true);
                cold.end_ps = Some(now);
                return true;
            }
        } else if ack == self.snd_una && self.outstanding() {
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.flag(flag::IN_RECOVERY) {
                self.enter_recovery(cold, c.mss_f);
            }
        }
        false
    }

    fn update_rtt(&mut self, rtt: Ps, c: &TransportConsts) {
        let rtt = rtt as f64;
        if self.srtt == 0.0 {
            self.srtt = rtt;
            self.rttvar = rtt / 2.0;
        } else {
            self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - rtt).abs();
            self.srtt = 0.875 * self.srtt + 0.125 * rtt;
        }
        let rto = (self.srtt + 4.0 * self.rttvar) as Ps;
        self.rto = rto.max(c.min_rto);
        self.backoff = 0;
    }

    fn grow(&mut self, cold: &mut FlowCold, newly: f64, now: Ps, c: &TransportConsts) {
        if self.cwnd < self.ssthresh {
            self.cwnd += newly; // slow start
            return;
        }
        match self.cc {
            CcAlgo::Dctcp | CcAlgo::Reno => {
                self.cwnd += c.mss_f * newly / self.cwnd;
            }
            CcAlgo::Cubic => self.cubic_grow(cold, now, c.mss_f),
        }
    }

    fn cubic_grow(&mut self, cold: &mut FlowCold, now: Ps, mss: f64) {
        let epoch = *cold.epoch_start.get_or_insert_with(|| {
            let w_max_mss = (cold.w_max / mss).max(self.cwnd / mss);
            cold.cubic_k = (w_max_mss * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
            now
        });
        let t = (now - epoch) as f64 / SEC as f64;
        let w_max_mss = (cold.w_max / mss).max(1.0);
        let target = CUBIC_C * (t - cold.cubic_k).powi(3) + w_max_mss;
        let cwnd_mss = self.cwnd / mss;
        if target > cwnd_mss {
            self.cwnd += mss * (target - cwnd_mss) / cwnd_mss;
        } else {
            // TCP-friendly floor: grow at least Reno-like.
            self.cwnd += 0.1 * mss * mss / self.cwnd;
        }
    }

    fn dctcp_window_boundary(&mut self, c: &TransportConsts) {
        // Only α estimation happens here; the cwnd reduction itself is
        // applied promptly by the CWR logic in `on_ack`.
        if self.acked_bytes > 0.0 {
            let f = self.ce_bytes / self.acked_bytes;
            self.alpha = (1.0 - c.dctcp_g) * self.alpha + c.dctcp_g * f;
        }
        self.ce_bytes = 0.0;
        self.acked_bytes = 0.0;
        self.window_end = self.snd_nxt;
    }

    fn enter_recovery(&mut self, cold: &mut FlowCold, mss: f64) {
        self.set_flag(flag::IN_RECOVERY, true);
        self.recover = self.snd_nxt;
        self.set_flag(flag::RETX_PENDING, true);
        match self.cc {
            CcAlgo::Dctcp | CcAlgo::Reno => {
                let inflight = self.inflight() as f64;
                self.ssthresh = (inflight / 2.0).max(2.0 * mss);
                self.cwnd = self.ssthresh;
            }
            CcAlgo::Cubic => {
                cold.w_max = self.cwnd;
                self.cwnd = (self.cwnd * CUBIC_BETA).max(2.0 * mss);
                self.ssthresh = self.cwnd;
                cold.epoch_start = None;
            }
        }
    }

    /// Handles a retransmission timeout: collapse to one MSS and resend
    /// everything from `snd_una` (go-back-N).
    pub fn on_rto(&mut self, cold: &mut FlowCold, c: &TransportConsts) {
        if self.done() || !self.outstanding() {
            return;
        }
        let mss = c.mss_f;
        match self.cc {
            CcAlgo::Dctcp | CcAlgo::Reno => {
                self.ssthresh = (self.inflight() as f64 / 2.0).max(2.0 * mss);
            }
            CcAlgo::Cubic => {
                cold.w_max = self.cwnd;
                self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0 * mss);
                cold.epoch_start = None;
            }
        }
        self.cwnd = mss;
        self.snd_nxt = self.snd_una;
        self.set_flag(flag::IN_RECOVERY, false);
        self.dup_acks = 0;
        self.set_flag(flag::RETX_PENDING, false);
        self.window_end = self.snd_nxt;
        self.backoff = (self.backoff + 1).min(10);
    }

    /// Test/diagnostic override of the slow-start threshold.
    pub fn set_ssthresh(&mut self, v: f64) {
        self.ssthresh = v;
    }

    /// Test/diagnostic override of the congestion window.
    pub fn set_cwnd(&mut self, v: f64) {
        self.cwnd = v;
    }
}

impl FlowRx {
    /// Receiver half: accepts a data segment, returns the cumulative ACK
    /// to send back.
    ///
    /// The out-of-order list is a sorted deque of disjoint,
    /// non-touching intervals. An in-order arrival absorbs the head
    /// intervals it makes contiguous in O(1) each; an out-of-order
    /// arrival insert-merges in one pass (left neighbor, swallowed
    /// successors, one splice).
    pub fn on_data(&mut self, seq: u64, len: u64) -> u64 {
        let end = seq + len;
        if seq <= self.rcv_next {
            self.rcv_next = self.rcv_next.max(end);
            // Absorb any out-of-order intervals now contiguous.
            while let Some(&(s, e)) = self.ooo.front() {
                if s <= self.rcv_next {
                    self.rcv_next = self.rcv_next.max(e);
                    self.ooo.pop_front();
                } else {
                    break;
                }
            }
        } else {
            // Insert-merge into the sorted disjoint interval list.
            let pos = self.ooo.partition_point(|&(s, _)| s < seq);
            let (mut lo, mut start, mut stop) = (pos, seq, end);
            if pos > 0 && self.ooo[pos - 1].1 >= seq {
                lo = pos - 1;
                start = self.ooo[lo].0;
                stop = stop.max(self.ooo[lo].1);
            }
            let mut hi = lo;
            while hi < self.ooo.len() && self.ooo[hi].0 <= stop {
                stop = stop.max(self.ooo[hi].1);
                hi += 1;
            }
            if lo == hi {
                self.ooo.insert(lo, (start, stop));
            } else {
                self.ooo[lo] = (start, stop);
                self.ooo.drain(lo + 1..hi);
            }
        }
        self.rcv_next
    }

    /// Number of out-of-order intervals held (diagnostics/tests).
    pub fn ooo_intervals(&self) -> usize {
        self.ooo.len()
    }
}

/// One flow as a hot/cold/rx triple — the convenience view used by
/// tests and single-flow drivers. The world stores the parts in
/// separate arrays ([`FlowTable`]); this wrapper simply forwards.
#[derive(Debug, Clone)]
pub struct FlowState {
    /// The per-ACK sender half.
    pub hot: FlowHot,
    /// The cold sender-side bookkeeping half.
    pub cold: FlowCold,
    /// The receiver reassembly half.
    pub rx: FlowRx,
}

impl FlowState {
    /// Creates a flow, not yet started.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: FlowId,
        src: u32,
        dst: u32,
        bytes: u64,
        prio: u8,
        start_ps: Ps,
        cc: CcAlgo,
        c: &TransportConsts,
    ) -> Self {
        FlowState {
            hot: FlowHot::new(id, src, dst, bytes, prio, cc, c),
            cold: FlowCold {
                start_ps,
                ..FlowCold::default()
            },
            rx: FlowRx::default(),
        }
    }

    /// Sender half: processes a cumulative ACK (see [`FlowHot::on_ack`]).
    pub fn on_ack(
        &mut self,
        ack: u64,
        ece: bool,
        echo_ts: Ps,
        now: Ps,
        c: &TransportConsts,
    ) -> bool {
        self.hot.on_ack(&mut self.cold, ack, ece, echo_ts, now, c)
    }

    /// Receiver half (see [`FlowRx::on_data`]).
    pub fn on_data(&mut self, seq: u64, len: u64) -> u64 {
        self.rx.on_data(seq, len)
    }

    /// See [`FlowHot::next_segment`].
    pub fn next_segment(&mut self, now: Ps, c: &TransportConsts) -> Packet {
        self.hot.next_segment(now, c)
    }

    /// See [`FlowHot::on_rto`].
    pub fn on_rto(&mut self, c: &TransportConsts) {
        self.hot.on_rto(&mut self.cold, c)
    }

    /// See [`FlowHot::can_send`].
    pub fn can_send(&self) -> bool {
        self.hot.can_send()
    }

    /// See [`FlowHot::done`].
    pub fn done(&self) -> bool {
        self.hot.done()
    }
}

/// Struct-of-arrays flow storage: the hot halves contiguous for the
/// per-ACK path, the cold halves beside them, indexed by [`FlowId`].
#[derive(Debug, Default)]
pub struct FlowTable {
    /// Hot halves, indexed by flow id.
    pub hot: Vec<FlowHot>,
    /// Cold halves, indexed by flow id.
    pub cold: Vec<FlowCold>,
    /// Receiver halves, indexed by flow id.
    pub rx: Vec<FlowRx>,
}

impl FlowTable {
    /// Number of flows.
    pub fn len(&self) -> usize {
        self.hot.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty()
    }

    /// Appends a flow, returning its id.
    pub fn push(&mut self, flow: FlowState) -> FlowId {
        let id = self.hot.len() as FlowId;
        self.hot.push(flow.hot);
        self.cold.push(flow.cold);
        self.rx.push(flow.rx);
        id
    }

    /// Both halves of flow `f`, mutably (the split borrow `on_ack`
    /// needs).
    #[inline]
    pub fn pair_mut(&mut self, f: FlowId) -> (&mut FlowHot, &mut FlowCold) {
        (&mut self.hot[f as usize], &mut self.cold[f as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MS, US};

    fn consts() -> TransportConsts {
        TransportConsts::new(&SimConfig::default())
    }

    fn flow(bytes: u64, cc: CcAlgo) -> FlowState {
        let mut f = FlowState::new(0, 0, 1, bytes, 0, 0, cc, &consts());
        f.hot.set_started(true);
        f
    }

    /// Drives a lossless transfer: sender emits, receiver acks, with a
    /// fixed RTT. Returns the ACK count needed to finish.
    fn run_lossless(f: &mut FlowState, rtt: Ps) -> u32 {
        let c = consts();
        let mut now = 0;
        let mut acks = 0;
        for _ in 0..100_000 {
            // Emit everything the window allows.
            let mut pkts = Vec::new();
            while f.can_send() {
                pkts.push(f.next_segment(now, &c));
            }
            now += rtt;
            for p in pkts {
                let ack = f.on_data(p.seq, p.len as u64);
                acks += 1;
                if f.on_ack(ack, false, p.ts, now, &c) {
                    return acks;
                }
            }
        }
        panic!("transfer did not finish");
    }

    #[test]
    fn consts_match_config() {
        let cfg = SimConfig::default();
        let c = TransportConsts::new(&cfg);
        assert_eq!(c.mss, cfg.mss as u64);
        assert_eq!(c.mss_f, cfg.mss as f64);
        assert_eq!(c.init_cwnd, cfg.init_cwnd_mss as f64 * cfg.mss as f64);
        assert_eq!(c.min_rto, cfg.min_rto);
        assert_eq!(c.pto_seed, TLP_MIN_PTO.min(cfg.min_rto));
        assert_eq!(c.dctcp_g, cfg.dctcp_g);
    }

    #[test]
    fn small_flow_completes_in_initial_window() {
        let mut f = flow(10_000, CcAlgo::Dctcp);
        let acks = run_lossless(&mut f, 100 * US);
        assert!(f.done());
        assert_eq!(f.cold.end_ps, Some(100 * US));
        assert_eq!(acks, 7); // ceil(10000/1460)
    }

    #[test]
    fn slow_start_doubles_cwnd_per_rtt() {
        let c = consts();
        let mut f = flow(10_000_000, CcAlgo::Dctcp);
        let w0 = f.hot.cwnd();
        let mut now = 0;
        // One RTT of ACK clocking: every in-flight byte acknowledged.
        let mut pkts = Vec::new();
        while f.can_send() {
            pkts.push(f.next_segment(now, &c));
        }
        now += 100 * US;
        for p in &pkts {
            let ack = f.on_data(p.seq, p.len as u64);
            f.on_ack(ack, false, p.ts, now, &c);
        }
        assert!(
            (f.hot.cwnd() - 2.0 * w0).abs() < c.mss_f,
            "cwnd {} not ~2×{}",
            f.hot.cwnd(),
            w0
        );
    }

    #[test]
    fn large_flow_completes() {
        let mut f = flow(2_000_000, CcAlgo::Dctcp);
        run_lossless(&mut f, 80 * US);
        assert!(f.done());
    }

    #[test]
    fn dctcp_alpha_rises_with_marks_and_cuts_window() {
        let c = consts();
        let mut f = flow(50_000_000, CcAlgo::Dctcp);
        // Push out of slow start first.
        f.hot.set_ssthresh(0.0);
        let mut now = 0;
        // All ACKs carry ECE for several windows: α → 1.
        for _ in 0..20 {
            let mut pkts = Vec::new();
            while f.can_send() {
                pkts.push(f.next_segment(now, &c));
            }
            now += 100 * US;
            for p in &pkts {
                let ack = f.on_data(p.seq, p.len as u64);
                f.on_ack(ack, true, p.ts, now, &c);
            }
        }
        assert!(
            f.hot.dctcp_alpha() > 0.9,
            "alpha {} should approach 1",
            f.hot.dctcp_alpha()
        );
        // And the window collapsed towards its floor.
        assert!(
            f.hot.cwnd() < 4.0 * c.mss_f,
            "cwnd {} not cut",
            f.hot.cwnd()
        );
        assert!(f.hot.dctcp_alpha() <= 1.0 + 1e-9);
    }

    #[test]
    fn dctcp_alpha_decays_without_marks() {
        let c = consts();
        let mut f = flow(50_000_000, CcAlgo::Dctcp);
        // Congestion avoidance keeps per-RTT packet counts small so the
        // flow spans 40 window boundaries: α = (15/16)⁴⁰ ≈ 0.076.
        f.hot.set_ssthresh(0.0);
        let mut now = 0;
        for _ in 0..40 {
            let mut pkts = Vec::new();
            while f.can_send() {
                pkts.push(f.next_segment(now, &c));
            }
            now += 100 * US;
            for p in &pkts {
                let ack = f.on_data(p.seq, p.len as u64);
                f.on_ack(ack, false, p.ts, now, &c);
            }
        }
        assert!(
            f.hot.dctcp_alpha() < 0.1,
            "alpha {} should decay toward 0",
            f.hot.dctcp_alpha()
        );
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let c = consts();
        let mut f = flow(1_000_000, CcAlgo::Dctcp);
        let mut pkts = Vec::new();
        while f.can_send() {
            pkts.push(f.next_segment(0, &c));
        }
        assert!(pkts.len() >= 5);
        // First packet lost: receiver sees 1..4, acks stay at 0.
        let cwnd_before = f.hot.cwnd();
        for p in &pkts[1..4] {
            let ack = f.on_data(p.seq, p.len as u64);
            assert_eq!(ack, 0, "cumulative ack must not advance");
            f.on_ack(ack, false, p.ts, 10 * US, &c);
        }
        // Third dupack: recovery entered, retransmission pending.
        assert!(f.can_send(), "retransmit must be pending");
        let rtx = f.next_segment(11 * US, &c);
        assert_eq!(rtx.seq, 0, "must retransmit the hole");
        assert!(f.hot.cwnd() < cwnd_before, "window must shrink on loss");
    }

    #[test]
    fn recovery_completes_on_full_ack() {
        let c = consts();
        let mut f = flow(100_000, CcAlgo::Dctcp);
        let mut pkts = Vec::new();
        while f.can_send() {
            pkts.push(f.next_segment(0, &c));
        }
        // Lose packet 0; deliver the rest.
        for p in &pkts[1..] {
            let ack = f.on_data(p.seq, p.len as u64);
            f.on_ack(ack, false, p.ts, 10 * US, &c);
        }
        // Retransmit and deliver the hole: cumulative ack jumps to the end
        // of all received data.
        let rtx = f.next_segment(20 * US, &c);
        let ack = f.on_data(rtx.seq, rtx.len as u64);
        assert!(ack > rtx.len as u64, "ack must jump past the hole");
        f.on_ack(ack, false, rtx.ts, 30 * US, &c);
        assert!(!f.hot.in_recovery());
    }

    #[test]
    fn rto_collapses_to_one_mss_and_goes_back_n() {
        let c = consts();
        let mut f = flow(1_000_000, CcAlgo::Dctcp);
        let mut n = 0;
        while f.can_send() {
            f.next_segment(0, &c);
            n += 1;
        }
        assert!(n >= 10);
        f.on_rto(&c);
        assert_eq!(f.hot.cwnd(), c.mss_f);
        assert_eq!(f.hot.inflight(), 0, "go-back-N resets snd_nxt");
        assert!(f.can_send());
        let p = f.next_segment(MS, &c);
        assert_eq!(p.seq, 0);
        // Backoff doubles the effective RTO.
        assert_eq!(f.hot.current_rto(), 2 * c.min_rto);
    }

    #[test]
    fn receiver_merges_out_of_order_segments() {
        let mut f = flow(10_000, CcAlgo::Dctcp);
        assert_eq!(f.on_data(2_000, 1_000), 0);
        assert_eq!(f.on_data(4_000, 1_000), 0);
        assert_eq!(f.on_data(1_000, 1_000), 0);
        assert_eq!(f.on_data(0, 1_000), 3_000); // 0..3000 contiguous
        assert_eq!(f.on_data(3_000, 1_000), 5_000); // absorbs 4000..5000
    }

    #[test]
    fn receiver_handles_duplicates_and_overlaps() {
        let mut f = flow(10_000, CcAlgo::Dctcp);
        assert_eq!(f.on_data(0, 1_000), 1_000);
        assert_eq!(f.on_data(0, 1_000), 1_000); // exact duplicate
        assert_eq!(f.on_data(500, 1_000), 1_500); // overlapping
        assert_eq!(f.on_data(3_000, 500), 1_500);
        assert_eq!(f.on_data(3_200, 800), 1_500); // overlap in OOO space
        assert_eq!(f.on_data(1_500, 1_500), 4_000);
    }

    #[test]
    fn pathological_reordering_is_linear_and_exact() {
        // Satellite regression: segments arrive strictly backwards, so
        // every arrival used to shift the whole interval vector
        // (`remove(0)` per absorbed interval ⇒ quadratic). The deque
        // version must produce the identical rcv_next trajectory.
        let mut f = flow(10_000_000, CcAlgo::Dctcp);
        let n: u64 = 2_000;
        // Hold byte 0 back; deliver segments n-1, n-2, …, 1.
        for seq in (1..n).rev() {
            assert_eq!(f.on_data(seq * 1_000, 1_000), 0, "hole must hold");
        }
        assert_eq!(f.rx.ooo_intervals(), 1, "adjacent intervals must merge");
        // The hole fills: everything becomes contiguous at once.
        assert_eq!(f.on_data(0, 1_000), n * 1_000);
        assert_eq!(f.rx.ooo_intervals(), 0);

        // Interleaved even/odd arrival: maximal interval count, then a
        // sweep of odd segments stitches them pairwise.
        let mut g = flow(10_000_000, CcAlgo::Dctcp);
        for k in (2..200u64).step_by(2) {
            g.on_data(k * 1_000, 1_000);
        }
        assert_eq!(g.rx.ooo_intervals(), 99);
        for k in (3..200u64).step_by(2) {
            g.on_data(k * 1_000, 1_000);
        }
        assert_eq!(g.rx.ooo_intervals(), 1);
        assert_eq!(g.on_data(1_000, 1_000), 0); // still missing byte 0
        assert_eq!(g.on_data(0, 1_000), 200_000);
    }

    #[test]
    fn cubic_cuts_by_beta_on_loss() {
        let c = consts();
        let mut f = flow(10_000_000, CcAlgo::Cubic);
        f.hot.set_ssthresh(0.0); // force congestion avoidance
        f.hot.set_cwnd(100.0 * c.mss_f);
        let mut pkts = Vec::new();
        while f.can_send() {
            pkts.push(f.next_segment(0, &c));
        }
        let before = f.hot.cwnd();
        for p in &pkts[1..4] {
            let ack = f.on_data(p.seq, p.len as u64);
            f.on_ack(ack, false, p.ts, 10 * US, &c);
        }
        assert!(
            (f.hot.cwnd() - CUBIC_BETA * before).abs() < 1.0,
            "cwnd {} != 0.7 × {}",
            f.hot.cwnd(),
            before
        );
    }

    #[test]
    fn cubic_grows_toward_w_max() {
        let c = consts();
        let mut f = flow(100_000_000, CcAlgo::Cubic);
        f.hot.set_ssthresh(0.0);
        f.hot.set_cwnd(50.0 * c.mss_f);
        f.cold.w_max = 100.0 * c.mss_f;
        let mut now = 0;
        for _ in 0..400 {
            let mut pkts = Vec::new();
            while f.can_send() {
                pkts.push(f.next_segment(now, &c));
            }
            now += 10 * MS;
            for p in &pkts {
                let ack = f.on_data(p.seq, p.len as u64);
                f.on_ack(ack, false, p.ts, now, &c);
            }
        }
        let w_mss = f.hot.cwnd() / c.mss_f;
        assert!(w_mss > 90.0, "CUBIC stalled at {w_mss} MSS");
    }

    #[test]
    fn rtt_estimation_sets_rto() {
        let c = consts();
        let mut f = flow(1_000_000, CcAlgo::Dctcp);
        let p = f.next_segment(0, &c);
        let ack = f.on_data(p.seq, p.len as u64);
        f.on_ack(ack, false, p.ts, 500 * US, &c);
        // RTO floors at min_rto despite the small RTT.
        assert_eq!(f.hot.current_rto(), c.min_rto);
        assert!(f.hot.srtt() > 0.0);
    }

    #[test]
    fn unstarted_flow_cannot_send() {
        let mut f = FlowState::new(0, 0, 1, 1_000, 0, 0, CcAlgo::Dctcp, &consts());
        assert!(!f.can_send());
        f.hot.set_started(true);
        assert!(f.can_send());
    }

    #[test]
    fn retransmissions_and_rto_fires_are_counted() {
        let c = consts();
        let mut f = flow(1_000_000, CcAlgo::Dctcp);
        let mut pkts = Vec::new();
        while f.can_send() {
            pkts.push(f.next_segment(0, &c));
        }
        assert_eq!(f.hot.retransmissions(), 0, "fresh data is not a retx");
        // Fast retransmit via three dupacks: one counted resend.
        for p in &pkts[1..4] {
            let ack = f.on_data(p.seq, p.len as u64);
            f.on_ack(ack, false, p.ts, 10 * US, &c);
        }
        let rtx = f.next_segment(11 * US, &c);
        assert_eq!(rtx.seq, 0);
        assert_eq!(f.hot.retransmissions(), 1);
        // Exhaust the probes, then a full RTO; the go-back-N resend of
        // already-sent bytes counts as retransmissions too.
        assert_eq!(f.hot.rto_fires(), 0);
        while !f.hot.on_timer(&mut f.cold, &c) {}
        assert_eq!(f.hot.rto_fires(), 1);
        let before = f.hot.retransmissions();
        let p = f.next_segment(MS, &c);
        assert_eq!(p.seq, 0);
        assert!(f.hot.retransmissions() > before);
    }

    #[test]
    fn kill_freezes_and_resume_restarts() {
        let c = consts();
        let mut f = flow(1_000_000, CcAlgo::Dctcp);
        let mut pkts = Vec::new();
        while f.can_send() {
            pkts.push(f.next_segment(0, &c));
        }
        let una_before = f.hot.inflight();
        assert!(una_before > 0);
        f.hot.kill();
        assert!(f.hot.killed());
        assert!(!f.can_send(), "killed flows must not send");
        // ACKs for in-flight data are ignored while killed.
        let ack = f.on_data(pkts[0].seq, pkts[0].len as u64);
        f.on_ack(ack, false, pkts[0].ts, 10 * US, &c);
        assert_eq!(f.hot.inflight(), una_before, "killed flow ignored ack");
        // Resume restarts from snd_una with a fresh window.
        f.hot.resume(&c);
        assert!(!f.hot.killed());
        assert_eq!(f.hot.inflight(), 0, "resume rewinds snd_nxt to snd_una");
        assert!(f.can_send());
        let p = f.next_segment(MS, &c);
        assert_eq!(p.seq, 0, "resend starts at the unacked head");
        assert_eq!(f.hot.cwnd(), c.init_cwnd);
        // The whole transfer still completes with exact byte counts.
        run_lossless(&mut f, 100 * US);
        assert!(f.done());
    }

    #[test]
    fn resume_after_done_is_a_noop() {
        let c = consts();
        let mut f = flow(2_000, CcAlgo::Dctcp);
        run_lossless(&mut f, 100 * US);
        assert!(f.done());
        f.hot.kill();
        f.hot.resume(&c);
        assert!(f.done());
        assert!(!f.can_send());
    }

    #[test]
    fn hot_half_stays_compact() {
        // The point of the split: the per-ACK struct must stay a few
        // cache lines and hold no heap pointers.
        assert!(
            std::mem::size_of::<FlowHot>() <= 192,
            "FlowHot grew to {} bytes",
            std::mem::size_of::<FlowHot>()
        );
    }
}
