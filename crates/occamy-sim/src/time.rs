//! Simulation time: integer picoseconds.
//!
//! Nanosecond resolution would alias serialization times at 100 Gbps
//! (a 64 B frame takes 5.12 ns), silently inflating throughput when
//! busy-until chains accumulate rounding. Picoseconds keep every
//! transmission time exact for all rates used in the paper while still
//! covering ~5 000 hours of simulated time in a `u64`.

/// Picoseconds since simulation start.
pub type Ps = u64;

/// One nanosecond in picoseconds.
pub const NS: Ps = 1_000;
/// One microsecond in picoseconds.
pub const US: Ps = 1_000_000;
/// One millisecond in picoseconds.
pub const MS: Ps = 1_000_000_000;
/// One second in picoseconds.
pub const SEC: Ps = 1_000_000_000_000;

/// Serialization time of `bytes` on a link of `rate_bps`, in picoseconds.
///
/// Exact for any byte count and rate: packet-sized transfers stay in a
/// single `u64` division (this sits on the per-packet hot path, twice per
/// hop), with a `u128` fallback for byte counts above ~2 MB.
///
/// # Panics
///
/// Panics if `rate_bps` is zero.
#[inline]
pub fn tx_time_ps(bytes: u64, rate_bps: u64) -> Ps {
    assert!(rate_bps > 0, "link rate must be positive");
    match bytes.checked_mul(8 * SEC) {
        Some(bits_ps) => bits_ps / rate_bps,
        None => ((bytes as u128 * 8 * SEC as u128) / rate_bps as u128) as Ps,
    }
}

/// Converts picoseconds to nanoseconds (for the `occamy-core` hooks).
#[inline]
pub fn ps_to_ns(ps: Ps) -> u64 {
    ps / NS
}

/// Converts picoseconds to fractional milliseconds (for reporting).
#[inline]
pub fn ps_to_ms(ps: Ps) -> f64 {
    ps as f64 / MS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_exact_at_common_rates() {
        // 1500 B at 10 Gbps = 1.2 µs.
        assert_eq!(tx_time_ps(1_500, 10_000_000_000), 1_200 * NS);
        // 1500 B at 100 Gbps = 120 ns.
        assert_eq!(tx_time_ps(1_500, 100_000_000_000), 120 * NS);
        // 64 B at 100 Gbps = 5.12 ns — exact only in ps.
        assert_eq!(tx_time_ps(64, 100_000_000_000), 5_120);
    }

    #[test]
    fn tx_time_scales_linearly() {
        let one = tx_time_ps(1_000, 40_000_000_000);
        let ten = tx_time_ps(10_000, 40_000_000_000);
        assert_eq!(ten, one * 10);
    }

    #[test]
    fn conversions() {
        assert_eq!(ps_to_ns(1_500), 1);
        assert_eq!(ps_to_ms(2 * MS), 2.0);
        assert_eq!(SEC, 1_000 * MS);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        tx_time_ps(1, 0);
    }
}
