//! Simulation-wide measurement collection.

use crate::time::Ps;

/// One periodic sample of a buffer partition (paper Fig. 11 time series).
#[derive(Debug, Clone)]
pub struct QueueSample {
    /// Sample time.
    pub t: Ps,
    /// Switch sampled.
    pub switch: usize,
    /// Partition sampled.
    pub partition: usize,
    /// Per-queue byte lengths.
    pub qlens: Vec<u64>,
    /// Per-queue admission thresholds `T(t)`.
    pub thresholds: Vec<u64>,
}

/// Aggregate drop/expulsion counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropCounters {
    /// Arrivals tail-dropped because the queue exceeded its threshold.
    pub threshold_drops: u64,
    /// Arrivals tail-dropped because the buffer was full.
    pub full_drops: u64,
    /// Packets expelled by Occamy's reactive head drop.
    pub head_drops: u64,
    /// Packets evicted synchronously by Pushout.
    pub pushout_evictions: u64,
}

impl DropCounters {
    /// All tail drops (arrivals refused).
    pub fn tail_drops(&self) -> u64 {
        self.threshold_drops + self.full_drops
    }

    /// All packets removed from the buffer without transmission.
    pub fn total_losses(&self) -> u64 {
        self.tail_drops() + self.head_drops + self.pushout_evictions
    }
}

/// Per-raw-source (CBR) delivery accounting, for loss-rate experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct CbrCounters {
    /// Packets emitted by the source.
    pub sent_pkts: u64,
    /// Bytes emitted by the source.
    pub sent_bytes: u64,
    /// Packets delivered to the destination host.
    pub rcvd_pkts: u64,
    /// Bytes delivered to the destination host.
    pub rcvd_bytes: u64,
}

impl CbrCounters {
    /// Fraction of emitted packets lost in the network.
    pub fn loss_rate(&self) -> f64 {
        if self.sent_pkts == 0 {
            0.0
        } else {
            1.0 - self.rcvd_pkts as f64 / self.sent_pkts as f64
        }
    }
}

/// All measurements collected during a run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Aggregate drop counters (all switches).
    pub drops: DropCounters,
    /// Shared-buffer utilization (`total/capacity`) sampled at each
    /// admission drop (paper Fig. 7a).
    pub drop_buffer_util: Vec<f64>,
    /// Memory-bandwidth utilization sampled at each admission drop
    /// (paper Fig. 7b).
    pub drop_membw_util: Vec<f64>,
    /// Periodic queue-length samples (paper Fig. 11).
    pub queue_samples: Vec<QueueSample>,
    /// Per-CBR-source delivery counters (paper Fig. 12).
    pub cbr: Vec<CbrCounters>,
    /// Total data packets delivered to hosts.
    pub delivered_pkts: u64,
    /// Total data bytes delivered to hosts.
    pub delivered_bytes: u64,
}

impl Metrics {
    /// Records an admission drop with the utilization context.
    pub fn record_drop(&mut self, threshold: bool, buffer_util: f64, membw_util: f64) {
        if threshold {
            self.drops.threshold_drops += 1;
        } else {
            self.drops.full_drops += 1;
        }
        self.drop_buffer_util.push(buffer_util);
        self.drop_membw_util.push(membw_util);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up() {
        let d = DropCounters {
            threshold_drops: 3,
            full_drops: 2,
            head_drops: 4,
            pushout_evictions: 1,
        };
        assert_eq!(d.tail_drops(), 5);
        assert_eq!(d.total_losses(), 10);
    }

    #[test]
    fn cbr_loss_rate() {
        let c = CbrCounters {
            sent_pkts: 100,
            sent_bytes: 100_000,
            rcvd_pkts: 80,
            rcvd_bytes: 80_000,
        };
        assert!((c.loss_rate() - 0.2).abs() < 1e-12);
        assert_eq!(CbrCounters::default().loss_rate(), 0.0);
    }

    #[test]
    fn record_drop_appends_samples() {
        let mut m = Metrics::default();
        m.record_drop(true, 0.8, 0.5);
        m.record_drop(false, 0.99, 0.7);
        assert_eq!(m.drops.threshold_drops, 1);
        assert_eq!(m.drops.full_drops, 1);
        assert_eq!(m.drop_buffer_util, vec![0.8, 0.99]);
        assert_eq!(m.drop_membw_util, vec![0.5, 0.7]);
    }
}
