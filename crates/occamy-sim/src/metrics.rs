//! Simulation-wide measurement collection.

use crate::time::Ps;

/// One periodic sample of a buffer partition (paper Fig. 11 time
/// series), borrowing its per-queue columns from the [`SampleLog`].
#[derive(Debug, Clone, Copy)]
pub struct QueueSample<'a> {
    /// Sample time.
    pub t: Ps,
    /// Switch sampled.
    pub switch: usize,
    /// Partition sampled.
    pub partition: usize,
    /// Per-queue byte lengths.
    pub qlens: &'a [u64],
    /// Per-queue admission thresholds `T(t)`.
    pub thresholds: &'a [u64],
}

#[derive(Debug, Clone, Copy)]
struct SampleMeta {
    t: Ps,
    switch: u32,
    partition: u32,
    offset: usize,
    queues: usize,
}

/// Append-only store of periodic queue samples.
///
/// Columns are flattened into two shared arrays instead of two fresh
/// `Vec`s per sample tick — the sampler was one of the few remaining
/// per-event allocation sites in the hot loop. Read back through
/// [`SampleLog::iter`] / [`SampleLog::get`], which reconstruct per-sample
/// [`QueueSample`] views.
#[derive(Debug, Clone, Default)]
pub struct SampleLog {
    meta: Vec<SampleMeta>,
    qlens: Vec<u64>,
    thresholds: Vec<u64>,
}

impl SampleLog {
    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Appends one sample at time `t`. Both iterators must yield one
    /// item per queue, in queue order, and agree in length (checked by
    /// a debug assertion).
    pub fn record(
        &mut self,
        t: Ps,
        switch: usize,
        partition: usize,
        qlens: impl IntoIterator<Item = u64>,
        thresholds: impl IntoIterator<Item = u64>,
    ) {
        let offset = self.qlens.len();
        self.qlens.extend(qlens);
        self.thresholds.extend(thresholds);
        debug_assert_eq!(self.thresholds.len(), self.qlens.len());
        self.meta.push(SampleMeta {
            t,
            switch: switch as u32,
            partition: partition as u32,
            offset,
            queues: self.qlens.len() - offset,
        });
    }

    /// The `i`-th sample.
    pub fn get(&self, i: usize) -> QueueSample<'_> {
        let m = self.meta[i];
        QueueSample {
            t: m.t,
            switch: m.switch as usize,
            partition: m.partition as usize,
            qlens: &self.qlens[m.offset..m.offset + m.queues],
            thresholds: &self.thresholds[m.offset..m.offset + m.queues],
        }
    }

    /// Iterates over all samples in recording order.
    pub fn iter(&self) -> impl Iterator<Item = QueueSample<'_>> {
        (0..self.meta.len()).map(|i| self.get(i))
    }
}

/// Aggregate drop/expulsion counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropCounters {
    /// Arrivals tail-dropped because the queue exceeded its threshold.
    pub threshold_drops: u64,
    /// Arrivals tail-dropped because the buffer was full.
    pub full_drops: u64,
    /// Packets expelled by Occamy's reactive head drop.
    pub head_drops: u64,
    /// Packets evicted synchronously by Pushout.
    pub pushout_evictions: u64,
}

impl DropCounters {
    /// All tail drops (arrivals refused).
    pub fn tail_drops(&self) -> u64 {
        self.threshold_drops + self.full_drops
    }

    /// All packets removed from the buffer without transmission.
    pub fn total_losses(&self) -> u64 {
        self.tail_drops() + self.head_drops + self.pushout_evictions
    }
}

/// Per-raw-source (CBR) delivery accounting, for loss-rate experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct CbrCounters {
    /// Packets emitted by the source.
    pub sent_pkts: u64,
    /// Bytes emitted by the source.
    pub sent_bytes: u64,
    /// Packets delivered to the destination host.
    pub rcvd_pkts: u64,
    /// Bytes delivered to the destination host.
    pub rcvd_bytes: u64,
}

impl CbrCounters {
    /// Fraction of emitted packets lost in the network.
    pub fn loss_rate(&self) -> f64 {
        if self.sent_pkts == 0 {
            0.0
        } else {
            1.0 - self.rcvd_pkts as f64 / self.sent_pkts as f64
        }
    }
}

/// All measurements collected during a run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Aggregate drop counters (all switches).
    pub drops: DropCounters,
    /// Shared-buffer utilization (`total/capacity`) sampled at each
    /// admission drop (paper Fig. 7a).
    pub drop_buffer_util: Vec<f64>,
    /// Memory-bandwidth utilization sampled at each admission drop
    /// (paper Fig. 7b).
    pub drop_membw_util: Vec<f64>,
    /// Periodic queue-length samples (paper Fig. 11).
    pub queue_samples: SampleLog,
    /// Per-CBR-source delivery counters (paper Fig. 12).
    pub cbr: Vec<CbrCounters>,
    /// Total data packets delivered to hosts.
    pub delivered_pkts: u64,
    /// Total data bytes delivered to hosts.
    pub delivered_bytes: u64,
    /// Events executed by [`crate::World::step`] — the denominator of the
    /// simulator's events/sec throughput metric.
    pub events_processed: u64,
    /// Fault events executed (link flaps, drains, host churn).
    pub faults_fired: u64,
    /// Packets dropped because of faults: port flushes on link-down,
    /// drain-window arrivals, dead-host deliveries, routes with no
    /// enabled port. Kept separate from [`DropCounters`] so `losses`
    /// keeps meaning buffer-management drops.
    pub fault_drops: u64,
}

impl Metrics {
    /// Records an admission drop with the utilization context.
    pub fn record_drop(&mut self, threshold: bool, buffer_util: f64, membw_util: f64) {
        if threshold {
            self.drops.threshold_drops += 1;
        } else {
            self.drops.full_drops += 1;
        }
        self.drop_buffer_util.push(buffer_util);
        self.drop_membw_util.push(membw_util);
    }

    /// Records a fault-caused drop that happened *at a switch buffer*
    /// (link-down flush, drain-window refusal) with the same utilization
    /// context as an admission drop, so fault drops show up in the
    /// Fig. 7-style utilization-at-drop series too.
    pub fn record_fault_drop(&mut self, buffer_util: f64, membw_util: f64) {
        self.fault_drops += 1;
        self.drop_buffer_util.push(buffer_util);
        self.drop_membw_util.push(membw_util);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_up() {
        let d = DropCounters {
            threshold_drops: 3,
            full_drops: 2,
            head_drops: 4,
            pushout_evictions: 1,
        };
        assert_eq!(d.tail_drops(), 5);
        assert_eq!(d.total_losses(), 10);
    }

    #[test]
    fn cbr_loss_rate() {
        let c = CbrCounters {
            sent_pkts: 100,
            sent_bytes: 100_000,
            rcvd_pkts: 80,
            rcvd_bytes: 80_000,
        };
        assert!((c.loss_rate() - 0.2).abs() < 1e-12);
        assert_eq!(CbrCounters::default().loss_rate(), 0.0);
    }

    #[test]
    fn record_drop_appends_samples() {
        let mut m = Metrics::default();
        m.record_drop(true, 0.8, 0.5);
        m.record_drop(false, 0.99, 0.7);
        assert_eq!(m.drops.threshold_drops, 1);
        assert_eq!(m.drops.full_drops, 1);
        assert_eq!(m.drop_buffer_util, vec![0.8, 0.99]);
        assert_eq!(m.drop_membw_util, vec![0.5, 0.7]);
    }

    #[test]
    fn sample_log_roundtrips_flat_columns() {
        let mut log = SampleLog::default();
        assert!(log.is_empty());
        log.record(10, 0, 1, [5, 6, 7], [50, 60, 70]);
        log.record(20, 2, 0, [1, 2], [10, 20]);
        assert_eq!(log.len(), 2);
        let s0 = log.get(0);
        assert_eq!((s0.t, s0.switch, s0.partition), (10, 0, 1));
        assert_eq!(s0.qlens, &[5, 6, 7]);
        assert_eq!(s0.thresholds, &[50, 60, 70]);
        let s1 = log.get(1);
        assert_eq!(s1.qlens, &[1, 2]);
        assert_eq!(s1.thresholds, &[10, 20]);
        assert_eq!(log.iter().count(), 2);
    }
}
