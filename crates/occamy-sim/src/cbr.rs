//! Raw constant-bit-rate sources — the Pktgen-DPDK stand-in.
//!
//! The P4 testbed experiments (paper Figs. 11–12) drive the switch with
//! raw line-rate traffic, no congestion control: a long-lived stream plus
//! a fixed-size burst. A [`CbrSource`] emits fixed-size datagrams at a
//! configured rate between a start and stop time, optionally bounded by a
//! total byte budget (the burst size).

use crate::packet::Packet;
use crate::time::{tx_time_ps, Ps};

/// A raw constant-bit-rate packet source attached to a host.
#[derive(Debug, Clone)]
pub struct CbrSource {
    /// Source index (also stamped as the `flow` id of its packets).
    pub id: usize,
    /// Emitting host.
    pub host: usize,
    /// Destination host.
    pub dst: usize,
    /// Emission rate in bits/s.
    pub rate_bps: u64,
    /// Payload bytes per packet.
    pub pkt_len: u32,
    /// Switch scheduling class.
    pub prio: u8,
    /// First emission time.
    pub start_ps: Ps,
    /// No emissions at or after this time.
    pub stop_ps: Ps,
    /// Total payload budget (burst size); `None` = unbounded.
    pub budget_bytes: Option<u64>,
    /// Payload bytes emitted so far.
    pub emitted_bytes: u64,
    /// Precomputed gap between emissions, fixed at construction (the
    /// division used to sit on the per-packet emission path).
    pub interval_ps: Ps,
}

impl CbrSource {
    /// Whether the source may emit at `now`.
    pub fn active(&self, now: Ps) -> bool {
        now < self.stop_ps && self.budget_bytes.map_or(true, |b| self.emitted_bytes < b)
    }

    /// Produces the next packet and advances the budget.
    ///
    /// The final packet of a budgeted burst is truncated to the remaining
    /// bytes.
    pub fn emit(&mut self, now: Ps) -> Packet {
        let mut len = self.pkt_len as u64;
        if let Some(b) = self.budget_bytes {
            len = len.min(b - self.emitted_bytes);
        }
        self.emitted_bytes += len;
        Packet::raw(
            self.id as u32,
            self.host as u32,
            self.dst as u32,
            len as u32,
            self.prio,
            now,
        )
    }

    /// Gap between emissions at the configured rate (paced on wire
    /// size), as precomputed into `interval_ps`.
    pub fn emit_interval(&self) -> Ps {
        self.interval_ps
    }

    /// The emission gap for a `pkt_len`-byte payload at `rate_bps`.
    pub fn interval_for(pkt_len: u32, rate_bps: u64) -> Ps {
        tx_time_ps(pkt_len as u64 + crate::packet::HDR_BYTES, rate_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::US;

    fn source(budget: Option<u64>) -> CbrSource {
        CbrSource {
            id: 0,
            host: 0,
            dst: 1,
            rate_bps: 10_000_000_000,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 0,
            stop_ps: 100 * US,
            budget_bytes: budget,
            emitted_bytes: 0,
            interval_ps: CbrSource::interval_for(1_460, 10_000_000_000),
        }
    }

    #[test]
    fn active_window_and_budget() {
        let mut s = source(Some(3_000));
        assert!(s.active(0));
        assert!(!s.active(100 * US));
        s.emit(0);
        s.emit(1);
        assert!(s.emitted_bytes >= 2_920);
        // Third emission exhausts the 3000-byte budget.
        let last = s.emit(2);
        assert_eq!(last.len, 80, "final packet truncated to budget");
        assert!(!s.active(3));
    }

    #[test]
    fn unbounded_source_runs_to_stop() {
        let mut s = source(None);
        for _ in 0..1_000 {
            s.emit(0);
        }
        assert!(s.active(99 * US));
        assert!(!s.active(101 * US));
    }

    #[test]
    fn emission_interval_matches_rate() {
        let s = source(None);
        // 1500 wire bytes at 10 Gbps = 1.2 µs.
        assert_eq!(s.emit_interval(), 1_200_000);
        assert_eq!(CbrSource::interval_for(1_460, 10_000_000_000), 1_200_000);
    }
}
