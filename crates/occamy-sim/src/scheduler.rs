//! Egress-port packet schedulers: FIFO, strict priority, DRR.

use crate::packet::Packet;
use std::collections::VecDeque;

/// A per-port scheduler choosing which class queue transmits next.
///
/// The paper's testbeds use strict priority (buffer-choking experiments,
/// Fig. 6/15), Deficit Round Robin (isolation experiments, Fig. 14/16)
/// and plain FIFO (single-class scenarios).
#[derive(Debug, Clone)]
pub enum Scheduler {
    /// Single class, first-in first-out.
    Fifo,
    /// Lowest class index first (class 0 = highest priority).
    StrictPriority,
    /// Deficit Round Robin with a per-class quantum in bytes.
    Drr {
        /// Quantum added to a class's deficit on each visit.
        quantum: u64,
        /// Per-class deficit counters.
        deficits: Vec<u64>,
        /// Class the round-robin pointer is at.
        current: usize,
        /// Whether the current class already received its quantum for
        /// this visit.
        replenished: bool,
    },
}

impl Scheduler {
    /// Creates a DRR scheduler for `classes` classes.
    pub fn drr(classes: usize, quantum: u64) -> Self {
        assert!(quantum > 0, "DRR quantum must be positive");
        Scheduler::Drr {
            quantum,
            deficits: vec![0; classes],
            current: 0,
            replenished: false,
        }
    }

    /// Picks the class to dequeue from, given the class queues.
    ///
    /// Returns `None` if every queue is empty. Must be called exactly once
    /// per dequeued packet (DRR mutates its deficit state).
    pub fn pick(&mut self, queues: &[VecDeque<Packet>]) -> Option<usize> {
        match self {
            Scheduler::Fifo | Scheduler::StrictPriority => {
                queues.iter().position(|q| !q.is_empty())
            }
            Scheduler::Drr {
                quantum,
                deficits,
                current,
                replenished,
            } => {
                if queues.iter().all(|q| q.is_empty()) {
                    return None;
                }
                // Classic DRR visit: on arriving at a backlogged class add
                // one quantum, serve packets while the head fits, then end
                // the visit and move on. The visit "stays open" across
                // `pick` calls so a class drains its whole deficit before
                // the pointer advances. With a quantum smaller than a
                // packet, several full rounds accumulate deficit, hence
                // the generous iteration bound.
                for _ in 0..queues.len().max(1) * 4_096 {
                    let c = *current;
                    match queues[c].front() {
                        None => {
                            // Idle classes forfeit their deficit.
                            deficits[c] = 0;
                            *replenished = false;
                            *current = (c + 1) % queues.len();
                        }
                        Some(head) => {
                            if !*replenished {
                                deficits[c] += *quantum;
                                *replenished = true;
                            }
                            if deficits[c] >= head.wire_bytes() {
                                deficits[c] -= head.wire_bytes();
                                return Some(c);
                            }
                            // Deficit exhausted: end of this class's visit.
                            *replenished = false;
                            *current = (c + 1) % queues.len();
                        }
                    }
                }
                unreachable!("DRR quantum too small relative to packet size");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(pkts: &[u32]) -> VecDeque<Packet> {
        pkts.iter()
            .map(|&len| Packet::data(0, 0, 1, 0, len, 0, 0))
            .collect()
    }

    #[test]
    fn fifo_picks_first_nonempty() {
        let mut s = Scheduler::Fifo;
        let queues = vec![q(&[]), q(&[100])];
        assert_eq!(s.pick(&queues), Some(1));
        assert_eq!(s.pick(&[q(&[]), q(&[])]), None);
    }

    #[test]
    fn strict_priority_prefers_class_zero() {
        let mut s = Scheduler::StrictPriority;
        let queues = vec![q(&[100]), q(&[100])];
        assert_eq!(s.pick(&queues), Some(0));
        let queues = vec![q(&[]), q(&[100])];
        assert_eq!(s.pick(&queues), Some(1));
    }

    #[test]
    fn drr_shares_bandwidth_equally() {
        let mut s = Scheduler::drr(2, 1_500);
        // Both classes backlogged with equal 1460 B packets.
        let mut queues = vec![q(&[1460; 40]), q(&[1460; 40])];
        let mut served = [0u32; 2];
        for _ in 0..40 {
            let c = s.pick(&queues).unwrap();
            queues[c].pop_front();
            served[c] += 1;
        }
        assert_eq!(served[0] + served[1], 40);
        let diff = served[0].abs_diff(served[1]);
        assert!(diff <= 2, "unequal DRR service: {served:?}");
    }

    #[test]
    fn drr_compensates_packet_size_differences() {
        // Class 0 sends 1460 B packets, class 1 sends 292 B packets; byte
        // service should even out (class 1 gets ~5 packets per class-0
        // packet).
        let mut s = Scheduler::drr(2, 1_500);
        let mut queues = vec![q(&[1460; 100]), q(&[292; 500])];
        let mut bytes = [0u64; 2];
        for _ in 0..240 {
            let c = s.pick(&queues).unwrap();
            bytes[c] += queues[c].pop_front().unwrap().wire_bytes();
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "byte shares diverged: {bytes:?}"
        );
    }

    #[test]
    fn drr_is_work_conserving() {
        let mut s = Scheduler::drr(3, 500);
        // Only class 2 is backlogged; it must be served immediately even
        // though its packets exceed one quantum.
        let mut queues = vec![q(&[]), q(&[]), q(&[1460; 10])];
        for _ in 0..10 {
            let c = s.pick(&queues).unwrap();
            assert_eq!(c, 2);
            queues[c].pop_front();
        }
        assert_eq!(s.pick(&queues), None);
    }

    #[test]
    fn drr_idle_class_forfeits_deficit() {
        let mut s = Scheduler::drr(2, 1_500);
        // Serve class 0 alone for a while (class 1 idle).
        let mut queues = vec![q(&[1460; 10]), q(&[])];
        for _ in 0..10 {
            let c = s.pick(&queues).unwrap();
            queues[c].pop_front();
        }
        // Class 1 wakes with a backlog; it must not have banked deficit,
        // so service alternates rather than bursting class 1.
        queues[0] = q(&[1460; 10]);
        queues[1] = q(&[1460; 10]);
        let mut served = [0u32; 2];
        for _ in 0..10 {
            let c = s.pick(&queues).unwrap();
            queues[c].pop_front();
            served[c] += 1;
        }
        assert!(served[0] >= 4, "class 0 starved: {served:?}");
    }
}
