//! End hosts: a NIC with ACK-first service and round-robin flow pulling.

use crate::packet::{FlowId, Packet};
use crate::time::Ps;
use crate::transport::{FlowHot, TransportConsts};
use std::collections::VecDeque;

/// A host's access link.
#[derive(Debug, Clone, Copy)]
pub struct HostLink {
    /// Switch this host attaches to.
    pub to_switch: usize,
    /// Link rate in bits/s.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_ps: Ps,
}

/// An end host.
///
/// The NIC serializes one packet at a time. Service order is: pending
/// ACKs first (small control packets preempting data is the usual
/// kernel/NIC behavior and keeps ACK clocks alive under incast), then raw
/// CBR packets, then transport flows in round-robin, one segment per
/// visit.
///
/// Flow access goes through the hot array only ([`FlowHot`]): emitting a
/// segment never touches a flow's cold half.
#[derive(Debug)]
pub struct Host {
    /// Host index.
    pub id: usize,
    /// Uplink to the access switch.
    pub link: HostLink,
    /// Whether the NIC is mid-serialization.
    pub tx_busy: bool,
    /// Whether the host is attached to the fabric. A dead host (fault
    /// injection's `HostLeave`) neither transmits nor receives until it
    /// rejoins.
    pub alive: bool,
    /// Pending ACKs (highest priority).
    pub ack_queue: VecDeque<Packet>,
    /// Pending raw CBR packets.
    pub cbr_queue: VecDeque<Packet>,
    /// Flows with window to send, served round-robin.
    pub ready: VecDeque<FlowId>,
}

impl Host {
    /// Creates an idle host.
    pub fn new(id: usize, link: HostLink) -> Self {
        Host {
            id,
            link,
            tx_busy: false,
            alive: true,
            ack_queue: VecDeque::new(),
            cbr_queue: VecDeque::new(),
            ready: VecDeque::new(),
        }
    }

    /// Marks a flow as having data to send (idempotent).
    pub fn mark_ready(&mut self, flows: &mut [FlowHot], f: FlowId) {
        let fl = &mut flows[f as usize];
        if !fl.in_host_queue() && fl.can_send() {
            fl.set_in_host_queue(true);
            self.ready.push_back(f);
        }
    }

    /// Picks the next packet for the NIC, or `None` if nothing is ready.
    ///
    /// Round-robin across flows: a flow that can still send after
    /// producing a segment goes to the back of the queue.
    pub fn next_packet(
        &mut self,
        flows: &mut [FlowHot],
        now: Ps,
        c: &TransportConsts,
    ) -> Option<Packet> {
        if let Some(ack) = self.ack_queue.pop_front() {
            return Some(ack);
        }
        if let Some(raw) = self.cbr_queue.pop_front() {
            return Some(raw);
        }
        while let Some(f) = self.ready.pop_front() {
            let fl = &mut flows[f as usize];
            if !fl.can_send() {
                fl.set_in_host_queue(false);
                continue;
            }
            let pkt = fl.next_segment(now, c);
            if fl.can_send() {
                self.ready.push_back(f);
            } else {
                fl.set_in_host_queue(false);
            }
            return Some(pkt);
        }
        None
    }

    /// Whether the host has anything to transmit.
    pub fn has_backlog(&self) -> bool {
        !self.ack_queue.is_empty() || !self.cbr_queue.is_empty() || !self.ready.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::CcAlgo;
    use crate::SimConfig;

    fn consts() -> TransportConsts {
        TransportConsts::new(&SimConfig::default())
    }

    fn host() -> Host {
        Host::new(
            0,
            HostLink {
                to_switch: 0,
                rate_bps: 10_000_000_000,
                prop_ps: 1_000,
            },
        )
    }

    fn started_flow(id: FlowId, bytes: u64, c: &TransportConsts) -> FlowHot {
        let mut f = FlowHot::new(id, 0, 1, bytes, 0, CcAlgo::Dctcp, c);
        f.set_started(true);
        f
    }

    #[test]
    fn acks_preempt_data() {
        let c = consts();
        let mut h = host();
        let mut flows = vec![started_flow(0, 100_000, &c)];
        h.mark_ready(&mut flows, 0);
        h.ack_queue
            .push_back(Packet::ack(5, 0, 2, 100, false, 0, 0));
        let first = h.next_packet(&mut flows, 0, &c).unwrap();
        assert_eq!(first.kind, crate::packet::PacketKind::Ack);
        let second = h.next_packet(&mut flows, 0, &c).unwrap();
        assert_eq!(second.kind, crate::packet::PacketKind::Data);
    }

    #[test]
    fn flows_round_robin() {
        let c = consts();
        let mut h = host();
        let mut flows = vec![
            started_flow(0, 1_000_000, &c),
            started_flow(1, 1_000_000, &c),
        ];
        h.mark_ready(&mut flows, 0);
        h.mark_ready(&mut flows, 1);
        let order: Vec<u32> = (0..4)
            .map(|_| h.next_packet(&mut flows, 0, &c).unwrap().flow)
            .collect();
        assert_eq!(order, vec![0, 1, 0, 1]);
    }

    #[test]
    fn mark_ready_is_idempotent() {
        let c = consts();
        let mut h = host();
        let mut flows = vec![started_flow(0, 10_000, &c)];
        h.mark_ready(&mut flows, 0);
        h.mark_ready(&mut flows, 0);
        assert_eq!(h.ready.len(), 1);
    }

    #[test]
    fn window_exhausted_flow_leaves_queue() {
        let c = consts();
        let mut h = host();
        // 10-MSS initial window, flow larger than that: after 10 segments
        // the flow must drop out of the ready queue.
        let mut flows = vec![started_flow(0, 10_000_000, &c)];
        h.mark_ready(&mut flows, 0);
        let mut sent = 0;
        while h.next_packet(&mut flows, 0, &c).is_some() {
            sent += 1;
            assert!(sent < 100, "window never closed");
        }
        assert_eq!(sent, 10);
        assert!(!flows[0].in_host_queue());
        assert!(!h.has_backlog());
    }

    #[test]
    fn finished_flow_is_skipped() {
        let c = consts();
        let mut h = host();
        let mut flows = vec![started_flow(0, 10_000, &c)];
        flows[0].set_in_host_queue(true);
        h.ready.push_back(0);
        // Simulate completion: a finished flow must be skipped.
        let mut cold = crate::transport::FlowCold::default();
        let mut rx = crate::transport::FlowRx::default();
        let mut pkts = Vec::new();
        while flows[0].can_send() {
            pkts.push(flows[0].next_segment(0, &c));
        }
        for p in &pkts {
            let ack = rx.on_data(p.seq, p.len as u64);
            flows[0].on_ack(&mut cold, ack, false, p.ts, 1, &c);
        }
        assert!(flows[0].done());
        assert!(h.next_packet(&mut flows, 0, &c).is_none());
        assert!(!flows[0].in_host_queue());
    }
}
