//! Deterministic domain-decomposed parallel execution.
//!
//! # Approach
//!
//! Classic conservative synchronization (Chandy–Misra–Bryant style),
//! with one twist: the result is not merely *a* legal event ordering
//! but **the exact serial ordering** — every metric, flow record and
//! queue trajectory is bit-for-bit identical to a single-threaded run,
//! for any thread count. `--freeze-perf` artifacts therefore `cmp`
//! equal across `--threads 1/2/4/8`, which CI enforces.
//!
//! The fabric is partitioned into *event domains* (pods, leaf/spine
//! groups — see [`crate::topology::DomainMap`]). Domains interact only
//! by sending packets over links whose one-way propagation delay is at
//! least the map's `lookahead_ps` (δ). Time advances in windows
//! `[W, W + δ)`: an event executing at `t ∈ [W, W + δ)` can schedule a
//! cross-domain arrival no earlier than `t + δ ≥ W + δ`, i.e. strictly
//! after the window — so within a window every domain's event stream
//! is causally independent of the others and they execute in parallel.
//!
//! # Exact serial order
//!
//! The subtlety is the global `(time, seq)` tie-break: a serial
//! [`EventQueue`] assigns every push a global sequence number at push
//! time, and equal-time events pop in push order. Domains cannot hand
//! out global sequence numbers concurrently without serializing, so
//! the executor splits the assignment:
//!
//! - Events whose sequence number is already known (everything armed
//!   before the window) sit in the domain's **main wheel** under their
//!   concrete `(time, seq)` key.
//! - Pushes made *during* the window go to a **staged** lane keyed
//!   `(time, push_index)` and are recorded in a per-domain `push_log`;
//!   each executed event appends an `exec_log` record counting its
//!   pushes and drop samples.
//!
//! Within one domain and one window, push order equals eventual serial
//! sequence order (the serial counter is monotonic, and all of a
//! domain's window events execute in serial order locally), so
//! `(time, push_index)` sorts staged entries exactly as `(time, seq)`
//! will. Staged entries sort after main entries at equal times because
//! every pending sequence number exceeds every assigned one.
//!
//! After each window a serial **walk** replays the interleaving a
//! serial run would have produced: it D-way-merges the domains'
//! exec logs by `(time, seq)` — a record's sequence number is always
//! known when it reaches its log's head, because its parent event
//! appears earlier in the same log — and assigns the global counter to
//! each push in order. Cross-domain packets then arm in the receiving
//! domain's main wheel under their concrete key, leftover staged
//! entries migrate to their own main wheel, and exact-order metric
//! streams (per-drop utilization samples) splice into the global log.
//! The walk touches only log metadata — O(events) with a tiny
//! constant — while packet processing runs on the workers.
//!
//! # Threading
//!
//! `min(threads, n_domains)` workers run under [`std::thread::scope`];
//! shards are round-robin assigned, and two [`Barrier`]s delimit each
//! window (workers execute; the coordinator walks). No unsafe code,
//! no lock contention: each `Mutex` is only ever taken uncontended on
//! its side of a barrier.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Barrier, Mutex};

use crate::cbr::CbrSource;
use crate::engine::{execute_event, Ctx, Env};
use crate::event::{Event, Key, NodeId, PacketId, PacketPool};
use crate::faults::{FaultKind, FaultSpec};
use crate::host::Host;
use crate::metrics::{CbrCounters, Metrics};
use crate::packet::{FlowId, Packet};
use crate::switch::Switch;
use crate::time::Ps;
use crate::timer::TimerWheel;
use crate::transport::{FlowCold, FlowHot, FlowRx, TransportConsts};
use crate::world::World;
use crate::SimConfig;

/// Component → domain/storage-index tables shared by every shard.
struct Plan {
    host_dom: Vec<u32>,
    host_loc: Vec<u32>,
    sw_dom: Vec<u32>,
    sw_loc: Vec<u32>,
    /// Sender-side (hot/cold) flow halves live in the source host's
    /// domain; receiver halves ([`FlowRx`]) in the destination's.
    flow_dom: Vec<u32>,
    flow_loc: Vec<u32>,
    rx_dom: Vec<u32>,
    rx_loc: Vec<u32>,
    cbr_dom: Vec<u32>,
    cbr_loc: Vec<u32>,
    /// Owning domain per fault-table entry: the switch's domain for
    /// link/drain faults, the host's for churn (matching the state the
    /// handler mutates — churn also touches the host's flows, whose
    /// hot/cold halves live in the same domain).
    fault_dom: Vec<u32>,
    /// Global flow ids per domain, in storage order (inverse of
    /// `flow_loc`, for translating host ready queues at merge).
    flow_gid: Vec<Vec<FlowId>>,
}

impl Plan {
    fn node_dom(&self, n: NodeId) -> u32 {
        match n {
            NodeId::Host(h) => self.host_dom[h as usize],
            NodeId::Switch(s) => self.sw_dom[s as usize],
        }
    }

    /// The domain that executes `ev` — the one owning the state the
    /// handler mutates.
    fn event_dom(&self, ev: &Event) -> u32 {
        match *ev {
            Event::Arrive { node, .. } => self.node_dom(node),
            Event::PortFree { switch, .. } | Event::ExpelRetry { switch, .. } => {
                self.sw_dom[switch as usize]
            }
            Event::HostTxFree { host } => self.host_dom[host as usize],
            Event::Rto { flow } | Event::FlowStart { flow } => self.flow_dom[flow as usize],
            Event::CbrEmit { source } => self.cbr_dom[source as usize],
            Event::Fault { fault } => self.fault_dom[fault as usize],
            // Worlds with samplers never engage the parallel path.
            Event::Sample { .. } => unreachable!("samplers force serial execution"),
        }
    }
}

/// A push made during the current window, in push order. Sequence
/// numbers are assigned to these entries — in exactly this order — by
/// the post-window walk.
#[derive(Clone, Copy)]
enum PushKind {
    /// Payload sits in the domain's staged lane under
    /// `(at, push_index)`.
    Local,
    /// A cross-domain packet arrival; carried here by value and armed
    /// in the destination's main wheel by the walk.
    Cross { node: NodeId, pkt: Packet },
}

#[derive(Clone, Copy)]
struct PushRec {
    at: Ps,
    kind: PushKind,
}

/// Which queue an executed event was popped from, i.e. whether its
/// serial sequence number is already concrete or still pending.
#[derive(Clone, Copy)]
enum ExecKey {
    Concrete(u64),
    Pending(u64),
}

/// One executed event: enough metadata for the walk to reconstruct the
/// serial interleaving without re-touching any packet state.
#[derive(Clone, Copy)]
struct ExecRec {
    at: Ps,
    key: ExecKey,
    n_pushes: u32,
    n_drops: u32,
}

/// Staged lane entry: a min-heap on `(at, push_index)`.
struct Staged(Key, Event);

impl PartialEq for Staged {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Staged {}
impl PartialOrd for Staged {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Staged {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0) // reversed: BinaryHeap::pop yields the min
    }
}

/// The event environment of one domain during a window (the parallel
/// counterpart of the serial [`EventQueue`] `Env`).
struct DomainQueue {
    dom: u32,
    plan: Arc<Plan>,
    staged: BinaryHeap<Staged>,
    push_log: Vec<PushRec>,
    pool: PacketPool,
}

impl Env for DomainQueue {
    fn push(&mut self, at: Ps, ev: Event) {
        let idx = self.push_log.len() as u64;
        self.push_log.push(PushRec {
            at,
            kind: PushKind::Local,
        });
        self.staged.push(Staged((at, idx), ev));
    }

    fn push_timer(&mut self, at: Ps, ev: Event) {
        self.push(at, ev);
    }

    fn push_arrival(&mut self, at: Ps, node: NodeId, pkt: Packet) {
        if self.plan.node_dom(node) == self.dom {
            let id = self.pool.insert(pkt);
            self.push(at, Event::Arrive { node, pkt: id });
        } else {
            self.push_log.push(PushRec {
                at,
                kind: PushKind::Cross { node, pkt },
            });
        }
    }

    fn take_packet(&mut self, id: PacketId) -> Packet {
        self.pool.take(id)
    }

    #[inline]
    fn host_idx(&self, h: u32) -> usize {
        self.plan.host_loc[h as usize] as usize
    }

    #[inline]
    fn switch_idx(&self, s: u32) -> usize {
        self.plan.sw_loc[s as usize] as usize
    }

    #[inline]
    fn flow_idx(&self, f: FlowId) -> usize {
        self.plan.flow_loc[f as usize] as usize
    }

    #[inline]
    fn rx_idx(&self, f: FlowId) -> usize {
        self.plan.rx_loc[f as usize] as usize
    }

    #[inline]
    fn cbr_idx(&self, c: u32) -> usize {
        self.plan.cbr_loc[c as usize] as usize
    }
}

/// The mutable component state owned by one domain.
#[derive(Default)]
struct Store {
    now: Ps,
    hosts: Vec<Host>,
    switches: Vec<Switch>,
    hot: Vec<FlowHot>,
    cold: Vec<FlowCold>,
    rx: Vec<FlowRx>,
    cbrs: Vec<CbrSource>,
    metrics: Metrics,
}

/// One event domain: owned state, its event queues and window logs.
struct Shard {
    store: Store,
    /// Events with concrete `(time, seq)` keys.
    main: TimerWheel,
    q: DomainQueue,
    exec_log: Vec<ExecRec>,
}

/// Per-run parallel execution statistics, surfaced on the world after
/// a parallel run for perf reporting (zeroed by serial runs).
#[derive(Debug, Clone, Default)]
pub struct ParStats {
    /// Synchronization windows executed.
    pub windows: u64,
    /// Events executed per domain.
    pub domain_events: Vec<u64>,
    /// Worker threads actually used (`min(threads, domains)`).
    pub workers: usize,
}

/// Runs `world` in parallel until every event at time `<= limit` has
/// executed. Pre/post state is exactly what the serial loop would
/// leave: same component state, same event keys, same sequence
/// counter, same metrics (including exact-order drop sample streams).
pub(crate) fn run_parallel(world: &mut World, limit: Ps) -> ParStats {
    let dm = world.domains.clone().expect("parallel run without domains");
    let nd = dm.n_domains();
    let delta = dm.lookahead_ps;
    debug_assert!(nd > 1 && delta > 0);

    // ----- Split: plan + move component state into shards -----
    let n_cbrs = world.cbrs.len();
    let plan = Arc::new(build_plan(world, &dm));
    let mut shards: Vec<Shard> = (0..nd)
        .map(|d| Shard {
            store: Store {
                now: world.now,
                metrics: Metrics {
                    cbr: vec![CbrCounters::default(); n_cbrs],
                    ..Metrics::default()
                },
                ..Store::default()
            },
            main: TimerWheel::default(),
            q: DomainQueue {
                dom: d as u32,
                plan: Arc::clone(&plan),
                staged: BinaryHeap::new(),
                push_log: Vec::new(),
                pool: PacketPool::default(),
            },
            exec_log: Vec::new(),
        })
        .collect();

    distribute(std::mem::take(&mut world.hosts), &plan.host_dom, |d, h| {
        shards[d].store.hosts.push(h)
    });
    distribute(std::mem::take(&mut world.switches), &plan.sw_dom, |d, s| {
        shards[d].store.switches.push(s)
    });
    let flows = std::mem::take(&mut world.flows);
    distribute(flows.hot, &plan.flow_dom, |d, f| {
        shards[d].store.hot.push(f)
    });
    distribute(flows.cold, &plan.flow_dom, |d, f| {
        shards[d].store.cold.push(f)
    });
    distribute(flows.rx, &plan.rx_dom, |d, f| shards[d].store.rx.push(f));
    distribute(std::mem::take(&mut world.cbrs), &plan.cbr_dom, |d, c| {
        shards[d].store.cbrs.push(c)
    });
    // Host ready queues hold storage indices (global in the serial
    // world): translate to domain-local on the way in.
    for sh in &mut shards {
        for host in &mut sh.store.hosts {
            for f in &mut host.ready {
                *f = plan.flow_loc[*f as usize];
            }
        }
    }

    // Drain the global queue into the domains' main wheels, keys and
    // all; the counter continues from the serial assignment.
    let mut counter = world.events.next_seq();
    while let Some((key, ev)) = world.events.pop_keyed() {
        let d = plan.event_dom(&ev) as usize;
        match ev {
            Event::Arrive { node, pkt } => {
                let p = world.events.take_packet(pkt);
                let id = shards[d].q.pool.insert(p);
                shards[d].main.arm(key, Event::Arrive { node, pkt: id });
            }
            other => shards[d].main.arm(key, other),
        }
    }

    // ----- Windowed execution -----
    let workers = world.cfg.threads.min(nd).max(1);
    let cfg = world.cfg.clone();
    let consts = TransportConsts::new(&cfg);
    // The fault table is immutable during the run: share one copy with
    // every worker (events carry global indices into it).
    let faults = world.faults.clone();
    let shards: Vec<Mutex<Shard>> = shards.into_iter().map(Mutex::new).collect();
    let hi_shared = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let start = Barrier::new(workers + 1);
    let end = Barrier::new(workers + 1);
    let mut gdrop_buf: Vec<f64> = Vec::new();
    let mut gdrop_membw: Vec<f64> = Vec::new();
    let mut stats = ParStats {
        windows: 0,
        domain_events: vec![0; nd],
        workers,
    };

    // Telemetry cadence for this run (0 = off). Snapshots piggyback on
    // the window barrier: the coordinator reads shard state between
    // windows, when workers are parked — read-only, so parallel runs
    // stay byte-identical to serial with telemetry on or off.
    let cadence = std::num::NonZeroU64::new(crate::telemetry::cadence());
    let base_events = world.metrics.events_processed;
    let base_losses = world.metrics.drops.total_losses();
    let base_fault_drops = world.metrics.fault_drops;
    let base_faults_fired = world.metrics.faults_fired;
    let mut next_snap = cadence.map_or(u64::MAX, |c| (base_events / c + 1) * c.get());

    std::thread::scope(|s| {
        for w in 0..workers {
            let (shards, hi_shared, done) = (&shards, &hi_shared, &done);
            let (start, end) = (&start, &end);
            let (cfg, consts, faults) = (&cfg, &consts, &faults);
            s.spawn(move || loop {
                start.wait();
                if done.load(SeqCst) {
                    break;
                }
                let hi = hi_shared.load(SeqCst);
                for i in (w..nd).step_by(workers) {
                    let mut sh = shards[i].lock().unwrap();
                    run_shard_window(&mut sh, hi, cfg, consts, faults);
                }
                end.wait();
            });
        }
        loop {
            // Next window start: the earliest pending event anywhere.
            // Staged lanes are empty between windows (the walk drains
            // them), so the main wheels see everything.
            let mut w0: Option<Ps> = None;
            for sh in &shards {
                if let Some((t, _)) = sh.lock().unwrap().main.peek() {
                    w0 = Some(w0.map_or(t, |m| m.min(t)));
                }
            }
            let Some(w0) = w0 else { break };
            if w0 > limit {
                break;
            }
            let hi = w0.saturating_add(delta - 1).min(limit);
            hi_shared.store(hi, SeqCst);
            start.wait();
            end.wait();
            walk(
                &shards,
                &plan,
                &mut counter,
                &mut gdrop_buf,
                &mut gdrop_membw,
                &mut stats,
            );
            stats.windows += 1;
            let total = base_events + stats.domain_events.iter().sum::<u64>();
            if total >= next_snap {
                let guards: Vec<_> = shards.iter().map(|m| m.lock().unwrap()).collect();
                let mut refs: Vec<&Switch> = Vec::new();
                let mut losses = base_losses;
                let mut fault_drops = base_fault_drops;
                let mut faults_fired = base_faults_fired;
                for gd in &guards {
                    refs.extend(gd.store.switches.iter());
                    losses += gd.store.metrics.drops.total_losses();
                    fault_drops += gd.store.metrics.fault_drops;
                    faults_fired += gd.store.metrics.faults_fired;
                }
                refs.sort_by_key(|sw| sw.id);
                crate::telemetry::emit_snapshot(
                    &refs,
                    losses,
                    fault_drops,
                    faults_fired,
                    total,
                    hi,
                    limit,
                    stats.windows,
                    nd as u64,
                );
                next_snap = cadence.map_or(u64::MAX, |c| (total / c + 1) * c.get());
            }
        }
        done.store(true, SeqCst);
        start.wait();
    });

    // ----- Merge back into the serial world -----
    let mut shards: Vec<Shard> = shards
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();
    for sh in &mut shards {
        while let Some((key, ev)) = sh.main.pop() {
            match ev {
                Event::Arrive { node, pkt } => {
                    let p = sh.q.pool.take(pkt);
                    let id = world.events.intern(p);
                    world.events.arm_keyed(key, Event::Arrive { node, pkt: id });
                }
                other => world.events.arm_keyed(key, other),
            }
        }
        debug_assert!(sh.q.staged.is_empty() && sh.q.push_log.is_empty());
        for host in &mut sh.store.hosts {
            for f in &mut host.ready {
                *f = sh.q.plan.flow_gid[sh.q.dom as usize][*f as usize];
            }
        }
    }
    world.events.set_next_seq(counter);
    world.hosts = reassemble(&mut shards, &plan.host_dom, |s| &mut s.store.hosts);
    world.switches = reassemble(&mut shards, &plan.sw_dom, |s| &mut s.store.switches);
    world.flows.hot = reassemble(&mut shards, &plan.flow_dom, |s| &mut s.store.hot);
    world.flows.cold = reassemble(&mut shards, &plan.flow_dom, |s| &mut s.store.cold);
    world.flows.rx = reassemble(&mut shards, &plan.rx_dom, |s| &mut s.store.rx);
    world.cbrs = reassemble(&mut shards, &plan.cbr_dom, |s| &mut s.store.cbrs);
    for sh in &shards {
        let m = &sh.store.metrics;
        world.metrics.drops.threshold_drops += m.drops.threshold_drops;
        world.metrics.drops.full_drops += m.drops.full_drops;
        world.metrics.drops.head_drops += m.drops.head_drops;
        world.metrics.drops.pushout_evictions += m.drops.pushout_evictions;
        world.metrics.delivered_pkts += m.delivered_pkts;
        world.metrics.delivered_bytes += m.delivered_bytes;
        world.metrics.events_processed += m.events_processed;
        world.metrics.faults_fired += m.faults_fired;
        world.metrics.fault_drops += m.fault_drops;
        for (acc, c) in world.metrics.cbr.iter_mut().zip(&m.cbr) {
            acc.sent_pkts += c.sent_pkts;
            acc.sent_bytes += c.sent_bytes;
            acc.rcvd_pkts += c.rcvd_pkts;
            acc.rcvd_bytes += c.rcvd_bytes;
        }
        debug_assert!(m.drop_buffer_util.is_empty(), "walk must drain drops");
    }
    world.metrics.drop_buffer_util.append(&mut gdrop_buf);
    world.metrics.drop_membw_util.append(&mut gdrop_membw);
    world.now = shards.iter().map(|s| s.store.now).fold(world.now, Ps::max);
    stats
}

/// Builds the split plan from the world's domain map.
fn build_plan(world: &World, dm: &crate::topology::DomainMap) -> Plan {
    let nd = dm.n_domains();
    let local = |doms: &[u32]| -> Vec<u32> {
        let mut next = vec![0u32; nd];
        doms.iter()
            .map(|&d| {
                let l = next[d as usize];
                next[d as usize] += 1;
                l
            })
            .collect()
    };
    let host_dom = dm.host_domain.clone();
    let sw_dom = dm.switch_domain.clone();
    let flow_dom: Vec<u32> = world
        .flows
        .hot
        .iter()
        .map(|f| host_dom[f.src as usize])
        .collect();
    let rx_dom: Vec<u32> = world
        .flows
        .hot
        .iter()
        .map(|f| host_dom[f.dst as usize])
        .collect();
    let cbr_dom: Vec<u32> = world.cbrs.iter().map(|c| host_dom[c.host]).collect();
    let fault_dom: Vec<u32> = world
        .faults
        .iter()
        .map(|f| match f.kind {
            FaultKind::LinkDown { switch, .. }
            | FaultKind::LinkUp { switch, .. }
            | FaultKind::SwitchDrainStart { switch }
            | FaultKind::SwitchDrainEnd { switch } => sw_dom[switch as usize],
            FaultKind::HostLeave { host } | FaultKind::HostJoin { host } => host_dom[host as usize],
        })
        .collect();
    let flow_loc = local(&flow_dom);
    let mut flow_gid = vec![Vec::new(); nd];
    for (f, &d) in flow_dom.iter().enumerate() {
        flow_gid[d as usize].push(f as FlowId);
    }
    Plan {
        host_loc: local(&host_dom),
        sw_loc: local(&sw_dom),
        flow_loc,
        rx_loc: local(&rx_dom),
        cbr_loc: local(&cbr_dom),
        host_dom,
        sw_dom,
        flow_dom,
        rx_dom,
        cbr_dom,
        fault_dom,
        flow_gid,
    }
}

/// Moves `items` into per-domain storage, preserving global-id order
/// within each domain (so storage index == the plan's `*_loc`).
fn distribute<T>(items: Vec<T>, dom: &[u32], mut sink: impl FnMut(usize, T)) {
    for (i, item) in items.into_iter().enumerate() {
        sink(dom[i] as usize, item);
    }
}

/// Rebuilds a global-id-ordered component vector from the shards.
fn reassemble<T>(
    shards: &mut [Shard],
    dom: &[u32],
    f: impl Fn(&mut Shard) -> &mut Vec<T>,
) -> Vec<T> {
    let mut iters: Vec<std::vec::IntoIter<T>> = shards
        .iter_mut()
        .map(|s| std::mem::take(f(s)).into_iter())
        .collect();
    dom.iter()
        .map(|&d| iters[d as usize].next().expect("component count mismatch"))
        .collect()
}

/// Executes one domain's events in the window `[.., hi]`, merging the
/// main (concrete-key) and staged (pending-key) lanes in serial order:
/// by time, main before staged on ties (assigned sequence numbers are
/// always smaller than pending ones), staged by push index.
fn run_shard_window(
    shard: &mut Shard,
    hi: Ps,
    cfg: &SimConfig,
    consts: &TransportConsts,
    faults: &[FaultSpec],
) {
    let Shard {
        store,
        main,
        q,
        exec_log,
    } = shard;
    let mut ctx = Ctx {
        now: store.now,
        cfg,
        consts,
        hosts: &mut store.hosts,
        switches: &mut store.switches,
        hot: &mut store.hot,
        cold: &mut store.cold,
        rx: &mut store.rx,
        cbrs: &mut store.cbrs,
        samplers: &[],
        faults,
        metrics: &mut store.metrics,
    };
    loop {
        let mk = main.peek();
        let sk = q.staged.peek().map(|s| s.0);
        let (from_staged, key) = match (mk, sk) {
            (None, None) => break,
            (Some(m), None) => (false, m),
            (None, Some(s)) => (true, s),
            // Ties go to main: concrete < pending sequence numbers.
            (Some(m), Some(s)) => {
                if s.0 < m.0 {
                    (true, s)
                } else {
                    (false, m)
                }
            }
        };
        if key.0 > hi {
            break;
        }
        let ((at, k), ev) = if from_staged {
            let Staged(k, ev) = q.staged.pop().unwrap();
            (k, ev)
        } else {
            main.pop().unwrap()
        };
        let rec_key = if from_staged {
            ExecKey::Pending(k)
        } else {
            ExecKey::Concrete(k)
        };
        let p0 = q.push_log.len();
        let d0 = ctx.metrics.drop_buffer_util.len();
        execute_event(&mut ctx, q, at, ev);
        exec_log.push(ExecRec {
            at,
            key: rec_key,
            n_pushes: (q.push_log.len() - p0) as u32,
            n_drops: (ctx.metrics.drop_buffer_util.len() - d0) as u32,
        });
    }
    store.now = ctx.now;
}

/// The post-window serial walk: replays the serial interleaving over
/// the domains' exec logs, assigning the global sequence counter to
/// every push in serial order, routing cross-domain arrivals, and
/// splicing exact-order drop-sample streams.
fn walk(
    shards: &[Mutex<Shard>],
    plan: &Plan,
    counter: &mut u64,
    gdrop_buf: &mut Vec<f64>,
    gdrop_membw: &mut Vec<f64>,
    stats: &mut ParStats,
) {
    let mut g: Vec<_> = shards.iter().map(|m| m.lock().unwrap()).collect();
    let nd = g.len();
    let mut ec = vec![0usize; nd]; // exec_log cursor
    let mut pc = vec![0usize; nd]; // push_log cursor
    let mut dc = vec![0usize; nd]; // drop-sample cursor
                                   // Sequence number assigned to each push of this window.
    let mut sop: Vec<Vec<u64>> = g.iter().map(|s| vec![0u64; s.q.push_log.len()]).collect();
    loop {
        // Head with the global (time, seq) minimum. A Pending head's
        // sequence is always resolved: its parent event sits earlier
        // in the same log and has been consumed.
        let mut best: Option<(Ps, u64, usize)> = None;
        for d in 0..nd {
            let Some(r) = g[d].exec_log.get(ec[d]) else {
                continue;
            };
            let seq = match r.key {
                ExecKey::Concrete(s) => s,
                ExecKey::Pending(i) => sop[d][i as usize],
            };
            if best.map_or(true, |(bt, bs, _)| (r.at, seq) < (bt, bs)) {
                best = Some((r.at, seq, d));
            }
        }
        let Some((_, _, d)) = best else { break };
        let rec = g[d].exec_log[ec[d]];
        ec[d] += 1;
        stats.domain_events[d] += 1;
        for _ in 0..rec.n_pushes {
            let idx = pc[d];
            pc[d] += 1;
            let seq = *counter;
            *counter += 1;
            sop[d][idx] = seq;
            let push = g[d].q.push_log[idx];
            if let PushKind::Cross { node, pkt } = push.kind {
                let dst = plan.node_dom(node) as usize;
                debug_assert_ne!(dst, d);
                let id = g[dst].q.pool.insert(pkt);
                g[dst]
                    .main
                    .arm((push.at, seq), Event::Arrive { node, pkt: id });
            }
        }
        for _ in 0..rec.n_drops {
            let m = &g[d].store.metrics;
            gdrop_buf.push(m.drop_buffer_util[dc[d]]);
            gdrop_membw.push(m.drop_membw_util[dc[d]]);
            dc[d] += 1;
        }
    }
    // Migrate leftover staged entries to the main wheel under their
    // now-concrete keys, and reset the window logs.
    for (d, sh) in g.iter_mut().enumerate() {
        debug_assert_eq!(pc[d], sh.q.push_log.len(), "unconsumed pushes");
        while let Some(Staged((at, idx), ev)) = sh.q.staged.pop() {
            sh.main.arm((at, sop[d][idx as usize]), ev);
        }
        sh.q.push_log.clear();
        sh.exec_log.clear();
        let m = &mut sh.store.metrics;
        debug_assert_eq!(dc[d], m.drop_buffer_util.len(), "unconsumed drops");
        m.drop_buffer_util.clear();
        m.drop_membw_util.clear();
    }
}
