//! Discrete-event network simulator for the Occamy experiments.
//!
//! This crate is the substitute for the paper's three evaluation
//! substrates — the Tofino testbed (Figs. 11–12), the DPDK software
//! switch (Figs. 13–16) and ns-3 (Figs. 7, 17–23). It provides:
//!
//! - an event engine with picosecond timestamps and deterministic
//!   tie-breaking ([`EventQueue`], [`World`]);
//! - output-queued shared-memory [`Switch`]es whose admission, ECN
//!   marking and (for Occamy) reactive expulsion are driven by the
//!   `occamy-core` buffer managers, with Tomahawk-style buffer
//!   partitions and a token-bucket model of redundant memory bandwidth;
//! - [`Host`]s running DCTCP / CUBIC / Reno ([`FlowState`]) plus raw
//!   CBR sources ([`CbrSource`]) standing in for Pktgen;
//! - [`topology`] builders for the paper's single-switch testbeds, the
//!   128-host leaf-spine fabric, k-ary fat-trees and 3-tier
//!   (access/aggregation/core) fabrics with an oversubscription knob,
//!   all routed with ECMP;
//! - [`Metrics`] capturing drops (with buffer / memory-bandwidth
//!   utilization context), queue-length time series, CBR loss and flow
//!   completion records.
//!
//! # Example: two hosts, one switch, one DCTCP flow
//!
//! ```
//! use occamy_sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
//! use occamy_sim::{CcAlgo, FlowDesc, SimConfig, SEC};
//! use occamy_core::BmKind;
//!
//! let mut world = single_switch(SingleSwitchCfg {
//!     host_rates_bps: vec![10_000_000_000; 2],
//!     prop_ps: 1_000_000, // 1 µs
//!     buffer_bytes: 400_000,
//!     classes: 1,
//!     bm: BmSpec::uniform(BmKind::Occamy, 8.0),
//!     sched: SchedKind::Fifo,
//!     sim: SimConfig::default(),
//! });
//! world.add_flow(FlowDesc {
//!     src: 0,
//!     dst: 1,
//!     bytes: 1_000_000,
//!     start_ps: 0,
//!     prio: 0,
//!     cc: CcAlgo::Dctcp,
//!     query: None,
//!     is_query: false,
//! });
//! world.run_to_completion(SEC);
//! assert!(world.all_flows_done());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cbr;
mod config;
mod crosspoint;
mod engine;
mod event;
mod faults;
mod host;
mod metrics;
mod packet;
mod par;
mod routing;
mod scheduler;
mod switch;
pub mod telemetry;
pub mod time;
mod timer;
pub mod topology;
mod transport;
mod world;

pub use cbr::CbrSource;
pub use config::SimConfig;
pub use crosspoint::{Crosspoint, XpSched};
pub use event::{Event, EventQueue, NodeId, PacketId};
pub use faults::{
    Drain, FaultKind, FaultSchedule, FaultSpec, HostChurn, LinkFlap, ResilienceCounters,
};
pub use host::{Host, HostLink};
pub use metrics::{CbrCounters, DropCounters, Metrics, QueueSample, SampleLog};
pub use packet::{FlowId, Packet, PacketKind, HDR_BYTES};
pub use par::ParStats;
pub use routing::{ecmp_hash, RoutingTable};
pub use scheduler::Scheduler;
pub use switch::{BufferPartition, Link, Switch, SwitchPort};
pub use time::{ps_to_ms, ps_to_ns, tx_time_ps, Ps, MS, NS, SEC, US};
pub use transport::{CcAlgo, FlowCold, FlowHot, FlowRx, FlowState, FlowTable, TransportConsts};
pub use world::{CbrDesc, FlowDesc, World};
