//! Out-of-band live telemetry: a deterministic trace bus.
//!
//! The simulator periodically publishes [`Snapshot`]s of its observable
//! state — events executed, sim-time watermark, per-switch buffer
//! occupancy, the hottest queues, fault state, parallel-window stats —
//! onto a process-global mpsc bus that a consumer (the bench runner's
//! sink thread) drains into JSONL files or a live dashboard.
//!
//! # Determinism contract
//!
//! Telemetry is **strictly read-only** over simulation state and is
//! driven by *event-count cadence*, never by wall clock: with a sink
//! installed, a snapshot is taken each time the number of executed
//! events crosses a multiple of [`cadence`]. Every field of a
//! [`Snapshot`] is therefore itself a deterministic function of the run
//! (wall-clock rates are stamped by the consumer, outside this crate),
//! and every simulation output byte is identical with telemetry on or
//! off — CI enforces this with frozen-artifact comparisons.
//!
//! With no sink installed, [`cadence`] returns 0 and the event loops
//! skip all of this at the cost of one branch per batch.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use crate::metrics::Metrics;
use crate::switch::Switch;
use crate::time::Ps;

/// Identity of the grid cell currently executing on this thread, echoed
/// into every snapshot so one stream can carry interleaved cells.
#[derive(Debug, Clone, Default)]
pub struct CellInfo {
    /// Scenario name (e.g. `fig12`).
    pub scenario: String,
    /// Cell index within the scenario grid.
    pub index: usize,
    /// Total cells in the grid.
    pub total: usize,
    /// Human-readable grid label (`load=0.8 scheme=occamy`).
    pub label: String,
    /// The cell's derived RNG seed.
    pub seed: u64,
}

/// Occupancy of one switch's shared buffer (all partitions summed).
#[derive(Debug, Clone, Copy)]
pub struct SwitchGauge {
    /// Switch id.
    pub switch: usize,
    /// Fabric tier ([`Switch::tier`]).
    pub tier: u8,
    /// Bytes currently buffered.
    pub occ_bytes: u64,
    /// Total buffer capacity in bytes.
    pub cap_bytes: u64,
}

/// One of the hottest (longest) queues in the fabric.
#[derive(Debug, Clone, Copy)]
pub struct QueueGauge {
    /// Switch id.
    pub switch: usize,
    /// Partition index within the switch.
    pub partition: usize,
    /// Queue index within the partition.
    pub queue: usize,
    /// Queued bytes.
    pub bytes: u64,
}

/// What a snapshot marks: a periodic sample or a cell boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Periodic in-run sample (event-count cadence).
    Snap,
    /// A grid cell started executing.
    CellStart,
    /// A grid cell finished.
    CellEnd,
}

impl SnapshotKind {
    /// Stable lower-case tag used in the JSONL stream.
    pub fn as_str(self) -> &'static str {
        match self {
            SnapshotKind::Snap => "snap",
            SnapshotKind::CellStart => "cell_start",
            SnapshotKind::CellEnd => "cell_end",
        }
    }
}

/// One telemetry record. All fields are deterministic functions of the
/// simulation; wall-clock context is added by the consumer.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Record kind.
    pub kind: SnapshotKind,
    /// The cell this snapshot belongs to (from [`set_cell`]).
    pub cell: CellInfo,
    /// Events executed so far in this cell's world.
    pub events: u64,
    /// Simulation-time watermark (ps).
    pub sim_ps: Ps,
    /// The run's time limit (ps); `sim_ps / limit_ps` is cell progress.
    pub limit_ps: Ps,
    /// Per-switch buffer occupancy, in switch-id order.
    pub switches: Vec<SwitchGauge>,
    /// The top-k longest queues in the fabric, hottest first.
    pub hot_queues: Vec<QueueGauge>,
    /// Buffer-management losses so far ([`Metrics::drops`] total).
    pub losses: u64,
    /// Fault-caused drops so far.
    pub fault_drops: u64,
    /// Fault events fired so far.
    pub faults_fired: u64,
    /// Ports currently marked link-down across the fabric.
    pub disabled_ports: u64,
    /// Switches currently draining.
    pub draining: u64,
    /// Parallel sync windows completed (0 on the serial path).
    pub windows: u64,
    /// Event domains engaged (0 on the serial path).
    pub domains: u64,
}

/// Number of hottest queues reported per snapshot.
pub const TOP_K_QUEUES: usize = 4;

static SINK: Mutex<Option<Sender<Snapshot>>> = Mutex::new(None);
static DEFAULT_CADENCE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CELL: RefCell<CellInfo> = RefCell::new(CellInfo::default());
    static CELL_CADENCE: RefCell<Option<u64>> = const { RefCell::new(None) };
}

/// Installs the process-global telemetry sink and returns the receiving
/// end of the bus. `every` is the default snapshot cadence in executed
/// events (clamped to ≥ 1). Replaces any previous sink.
pub fn install(every: u64) -> Receiver<Snapshot> {
    let (tx, rx) = channel();
    *SINK.lock().unwrap() = Some(tx);
    DEFAULT_CADENCE.store(every.max(1), Relaxed);
    rx
}

/// Removes the sink; [`cadence`] returns 0 again and the event loops
/// revert to the telemetry-free fast path.
pub fn uninstall() {
    *SINK.lock().unwrap() = None;
    DEFAULT_CADENCE.store(0, Relaxed);
}

/// Tags snapshots emitted from this thread with the given cell identity
/// (the bench runner calls this as each grid cell starts).
pub fn set_cell(info: CellInfo) {
    CELL.with(|c| *c.borrow_mut() = info);
}

/// Per-cell cadence override (from a spec's `[telemetry] every_events`);
/// `None` falls back to the sink default.
pub fn set_cell_cadence(every: Option<u64>) {
    CELL_CADENCE.with(|c| *c.borrow_mut() = every.map(|e| e.max(1)));
}

/// The snapshot cadence in executed events for the current thread, or 0
/// when telemetry is disabled. Event loops read this once per run.
pub fn cadence() -> u64 {
    if DEFAULT_CADENCE.load(Relaxed) == 0 {
        return 0;
    }
    // A sink exists; honor the per-cell override if one is set.
    CELL_CADENCE
        .with(|c| *c.borrow())
        .unwrap_or_else(|| DEFAULT_CADENCE.load(Relaxed))
}

/// Sends a snapshot to the sink, if one is installed. A disconnected
/// receiver is ignored — telemetry must never fail a run.
pub fn emit(snap: Snapshot) {
    let tx = SINK.lock().unwrap().clone();
    if let Some(tx) = tx {
        let _ = tx.send(snap);
    }
}

/// Emits a cell-boundary marker (`CellStart`/`CellEnd`) carrying the
/// current thread's cell identity and the final counters, if known.
pub fn emit_marker(kind: SnapshotKind, events: u64, sim_ps: Ps, limit_ps: Ps) {
    if DEFAULT_CADENCE.load(Relaxed) == 0 {
        return;
    }
    emit(Snapshot {
        kind,
        cell: CELL.with(|c| c.borrow().clone()),
        events,
        sim_ps,
        limit_ps,
        switches: Vec::new(),
        hot_queues: Vec::new(),
        losses: 0,
        fault_drops: 0,
        faults_fired: 0,
        disabled_ports: 0,
        draining: 0,
        windows: 0,
        domains: 0,
    });
}

/// Builds and emits a periodic snapshot from read-only views of the
/// simulation state. Called by the serial loop and by the parallel
/// coordinator (both on the thread that owns the cell context).
#[allow(clippy::too_many_arguments)]
pub fn emit_snapshot(
    switches: &[&Switch],
    losses: u64,
    fault_drops: u64,
    faults_fired: u64,
    events: u64,
    sim_ps: Ps,
    limit_ps: Ps,
    windows: u64,
    domains: u64,
) {
    let mut gauges: Vec<SwitchGauge> = Vec::with_capacity(switches.len());
    let mut hot: Vec<QueueGauge> = Vec::new();
    let mut disabled_ports = 0u64;
    let mut draining = 0u64;
    for sw in switches {
        let mut occ = 0u64;
        let mut cap = 0u64;
        for (pi, part) in sw.partitions.iter().enumerate() {
            occ += part.state.total();
            cap += part.state.capacity();
            for (q, bytes) in part.state.iter() {
                if bytes == 0 {
                    continue;
                }
                let g = QueueGauge {
                    switch: sw.id,
                    partition: pi,
                    queue: q,
                    bytes,
                };
                // Keep the top-k by bytes; ties break toward the lower
                // (switch, partition, queue) triple via stable ordering.
                let pos = hot.partition_point(|h| h.bytes >= bytes);
                if pos < TOP_K_QUEUES {
                    hot.insert(pos, g);
                    hot.truncate(TOP_K_QUEUES);
                }
            }
        }
        if let Some(xp) = &sw.xp {
            // Crosspoint-queued switches hold their buffer in the
            // crosspoint FIFOs, not the (empty) partitions.
            occ += xp.total;
            cap += xp.total_cap;
        }
        gauges.push(SwitchGauge {
            switch: sw.id,
            tier: sw.tier,
            occ_bytes: occ,
            cap_bytes: cap,
        });
        disabled_ports += sw.n_disabled as u64;
        draining += sw.draining as u64;
    }
    gauges.sort_by_key(|g| g.switch);
    emit(Snapshot {
        kind: SnapshotKind::Snap,
        cell: CELL.with(|c| c.borrow().clone()),
        events,
        sim_ps,
        limit_ps,
        switches: gauges,
        hot_queues: hot,
        losses,
        fault_drops,
        faults_fired,
        disabled_ports,
        draining,
        windows,
        domains,
    })
}

/// Convenience for the serial loop: emit a snapshot from a contiguous
/// switch slice and the metrics struct.
pub fn emit_snapshot_serial(switches: &[Switch], metrics: &Metrics, sim_ps: Ps, limit_ps: Ps) {
    let refs: Vec<&Switch> = switches.iter().collect();
    emit_snapshot(
        &refs,
        metrics.drops.total_losses(),
        metrics.fault_drops,
        metrics.faults_fired,
        metrics.events_processed,
        sim_ps,
        limit_ps,
        0,
        0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_is_zero_without_a_sink() {
        // Note: telemetry state is process-global; this test runs in the
        // same binary as the rest of the unit tests, so it restores the
        // uninstalled state before returning.
        uninstall();
        assert_eq!(cadence(), 0);
        let rx = install(10_000);
        assert_eq!(cadence(), 10_000);
        set_cell_cadence(Some(500));
        assert_eq!(cadence(), 500);
        set_cell_cadence(None);
        assert_eq!(cadence(), 10_000);
        emit_marker(SnapshotKind::CellStart, 0, 0, 100);
        let m = rx.recv().unwrap();
        assert_eq!(m.kind, SnapshotKind::CellStart);
        uninstall();
        assert_eq!(cadence(), 0);
        // Emitting without a sink is a no-op, not a panic.
        emit_marker(SnapshotKind::CellEnd, 1, 1, 100);
    }
}
