//! Simulation-wide configuration.

use crate::time::{Ps, MS};

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Maximum segment size (payload bytes per data packet).
    pub mss: u32,
    /// Per-queue ECN marking threshold in bytes (DCTCP's `K`).
    pub ecn_k_bytes: u64,
    /// Minimum (and initial) retransmission timeout.
    pub min_rto: Ps,
    /// Initial congestion window in MSS.
    pub init_cwnd_mss: u32,
    /// DCTCP gain `g` for the fraction estimator.
    pub dctcp_g: f64,
    /// Memory cell size in bytes for expulsion-bandwidth accounting
    /// (paper §5.3 assumes 200 B cells).
    pub cell_bytes: u64,
    /// Token-bucket burst capacity, in cells, for the expulsion module.
    pub expel_bucket_cells: f64,
    /// Scale factor on the expulsion token generation rate (1.0 = the
    /// partition's full forwarding capacity, as in the paper's §5.3
    /// prototype; 0.0 disables expulsion entirely — the §4.5 ablation).
    pub expel_rate_factor: f64,
    /// Worker threads for intra-run domain-decomposed execution
    /// (see `crate::par`). `1` (the default) runs the serial loop;
    /// `N > 1` engages the deterministic parallel executor when the
    /// topology exports event domains. Results are bit-identical for
    /// every thread count.
    pub threads: usize,
}

impl Default for SimConfig {
    /// Defaults match the paper's DPDK testbed (§6.2): MSS 1460,
    /// ECN K = 65 packets ≈ 97.5 KB, Linux-like 200 ms min RTO,
    /// IW 10, g = 1/16.
    fn default() -> Self {
        SimConfig {
            mss: 1_460,
            ecn_k_bytes: 65 * 1_500,
            min_rto: 200 * MS,
            init_cwnd_mss: 10,
            dctcp_g: 1.0 / 16.0,
            cell_bytes: 200,
            expel_bucket_cells: 256.0,
            expel_rate_factor: 1.0,
            threads: 1,
        }
    }
}

impl SimConfig {
    /// Parameters for the large-scale leaf-spine simulations (§6.4):
    /// ECN K = 720 KB (0.72 BDP at 100 Gbps / 80 µs) and min RTO 5 ms.
    pub fn large_scale() -> Self {
        SimConfig {
            ecn_k_bytes: 720_000,
            min_rto: 5 * MS,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_dpdk_testbed() {
        let c = SimConfig::default();
        assert_eq!(c.mss, 1460);
        assert_eq!(c.ecn_k_bytes, 97_500);
        assert_eq!(c.min_rto, 200 * MS);
        assert!((c.dctcp_g - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn large_scale_overrides() {
        let c = SimConfig::large_scale();
        assert_eq!(c.ecn_k_bytes, 720_000);
        assert_eq!(c.min_rto, 5 * MS);
        assert_eq!(c.mss, 1460, "unrelated fields keep defaults");
    }
}
