//! The event queue: a time-ordered heap with deterministic tie-breaking.
//!
//! The queue is built for event-loop throughput (profiles of the figure
//! sweeps showed heap maintenance dominating wall clock):
//!
//! - **Interned packets**: `Arrive` carries a [`PacketId`] into a slab
//!   pool instead of the ~56-byte [`Packet`], so a heap node is a few
//!   words and sift operations stay within one cache line. Pool slots
//!   are recycled on [`EventQueue::take_packet`], making the steady-state
//!   loop allocation-free.
//! - **Compact events**: indices are `u32`; periodic samplers live in the
//!   world and are referenced by id.
//! - **A deferred lane** for the bulk of setup-time events (flow starts):
//!   they are sorted once instead of inflating the binary heap that every
//!   runtime push/pop has to sift through.
//!
//! Events at equal timestamps pop in insertion order regardless of lane,
//! which keeps runs bit-for-bit reproducible.

use crate::packet::{FlowId, Packet};
use crate::time::Ps;

/// A node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeId {
    /// Host `index`.
    Host(usize),
    /// Switch `index`.
    Switch(usize),
}

/// Handle to a packet interned in the event queue's pool.
pub type PacketId = u32;

/// Discrete simulation events.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A packet arrives at a node (after link serialization + propagation).
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// The interned packet (redeem with [`EventQueue::take_packet`]).
        pkt: PacketId,
    },
    /// A switch egress port finished serializing its current packet.
    PortFree {
        /// Switch index.
        switch: u32,
        /// Port index.
        port: u32,
    },
    /// A host NIC finished serializing its current packet.
    HostTxFree {
        /// Host index.
        host: u32,
    },
    /// Retry Occamy expulsion once the token bucket has refilled.
    ExpelRetry {
        /// Switch index.
        switch: u32,
        /// Buffer partition index.
        partition: u32,
    },
    /// Retransmission-timer check for a flow.
    ///
    /// Flows keep a single pending timer event plus a soft deadline; a
    /// firing that arrives before the (re-armed) deadline reschedules
    /// itself instead of acting.
    Rto {
        /// Flow index.
        flow: FlowId,
    },
    /// Start an application flow.
    FlowStart {
        /// Flow index.
        flow: FlowId,
    },
    /// Emit the next CBR packet of a raw source.
    CbrEmit {
        /// CBR source index.
        source: u32,
    },
    /// Record a queue-length sample and reschedule per the sampler spec
    /// registered in the world.
    Sample {
        /// Sampler index (into the world's sampler table).
        sampler: u32,
    },
}

/// Slab of in-flight packets, recycled through a free list.
#[derive(Debug, Default)]
struct PacketPool {
    slots: Vec<Packet>,
    free: Vec<PacketId>,
}

impl PacketPool {
    #[inline]
    fn insert(&mut self, pkt: Packet) -> PacketId {
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = pkt;
                id
            }
            None => {
                self.slots.push(pkt);
                (self.slots.len() - 1) as PacketId
            }
        }
    }

    #[inline]
    fn take(&mut self, id: PacketId) -> Packet {
        self.free.push(id);
        self.slots[id as usize]
    }
}

/// Heap ordering key: `(time, global insertion sequence)`.
type Key = (Ps, u64);

/// A 4-ary min-heap with keys and payloads in separate arrays.
///
/// Versus `std::collections::BinaryHeap<(Key, Event)>`: half the depth,
/// and a sift level compares against four *contiguous* 16-byte keys —
/// one cache line — instead of chasing 40-byte nodes, which matters when
/// tens of thousands of pending timers keep the heap deep.

#[derive(Default)]
struct QuadHeap {
    keys: Vec<Key>,
    events: Vec<Event>,
}

impl QuadHeap {
    #[inline]
    fn len(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    #[inline]
    fn peek_key(&self) -> Option<Key> {
        self.keys.first().copied()
    }

    #[inline]
    fn push(&mut self, key: Key, event: Event) {
        let mut i = self.keys.len();
        self.keys.push(key);
        self.events.push(event);
        // Sift the hole up; write the new element once at its slot.
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.keys[parent] <= key {
                break;
            }
            self.keys[i] = self.keys[parent];
            self.events[i] = self.events[parent];
            i = parent;
        }
        self.keys[i] = key;
        self.events[i] = event;
    }

    fn pop(&mut self) -> Option<(Key, Event)> {
        let top_key = *self.keys.first()?;
        let top_event = self.events[0];
        let key = self.keys.pop().expect("non-empty");
        let event = self.events.pop().expect("non-empty");
        let n = self.keys.len();
        if n > 0 {
            // Sift the former last element down from the root hole.
            let mut i = 0;
            loop {
                let first = 4 * i + 1;
                if first >= n {
                    break;
                }
                let mut min = first;
                for c in first + 1..(first + 4).min(n) {
                    if self.keys[c] < self.keys[min] {
                        min = c;
                    }
                }
                if key <= self.keys[min] {
                    break;
                }
                self.keys[i] = self.keys[min];
                self.events[i] = self.events[min];
                i = min;
            }
            self.keys[i] = key;
            self.events[i] = event;
        }
        Some((top_key, top_event))
    }
}

/// Time-ordered event queue.
///
/// Events at equal timestamps pop in insertion order, which makes runs
/// bit-for-bit reproducible regardless of heap internals.
#[derive(Default)]
pub struct EventQueue {
    heap: QuadHeap,
    /// Setup-time events, kept sorted descending by `(at, seq)` so the
    /// next one is `last()`; sorted lazily before the first pop after a
    /// batch of [`EventQueue::push_deferred`] calls.
    deferred: Vec<(Key, Event)>,
    deferred_dirty: bool,
    next_seq: u64,
    pool: PacketPool,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    #[inline]
    fn seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedules `event` at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: Ps, event: Event) {
        let seq = self.seq();
        self.heap.push((at, seq), event);
    }

    /// Schedules a setup-time event (e.g. a flow start) on the deferred
    /// lane: bulk-sorted once instead of paying heap maintenance on the
    /// hot path. Ordering relative to [`EventQueue::push`] events is
    /// identical — ties still break on global insertion order.
    pub fn push_deferred(&mut self, at: Ps, event: Event) {
        let seq = self.seq();
        self.deferred.push(((at, seq), event));
        self.deferred_dirty = true;
    }

    /// Interns `pkt` and schedules its arrival at `node`.
    #[inline]
    pub fn push_arrival(&mut self, at: Ps, node: NodeId, pkt: Packet) {
        let pkt = self.pool.insert(pkt);
        self.push(at, Event::Arrive { node, pkt });
    }

    /// Redeems an [`Event::Arrive`] handle, recycling its pool slot.
    #[inline]
    pub fn take_packet(&mut self, id: PacketId) -> Packet {
        self.pool.take(id)
    }

    #[inline]
    fn settle_deferred(&mut self) {
        if self.deferred_dirty {
            // Descending, so the earliest (at, seq) sits at the end.
            self.deferred
                .sort_unstable_by_key(|d| std::cmp::Reverse(d.0));
            self.deferred_dirty = false;
        }
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(Ps, Event)> {
        self.pop_at_most(Ps::MAX)
    }

    /// Pops the earliest event if it is scheduled at or before `limit` —
    /// the run loop's single probe-and-pop (a separate peek would settle
    /// and compare the lanes twice per event).
    pub fn pop_at_most(&mut self, limit: Ps) -> Option<(Ps, Event)> {
        self.settle_deferred();
        let from_deferred = match (self.deferred.last(), self.heap.peek_key()) {
            (Some(d), Some(h)) => d.0 < h,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let ((at, _), event) = if from_deferred {
            let d = *self.deferred.last()?;
            if d.0 .0 > limit {
                return None;
            }
            self.deferred.pop()?
        } else {
            if self.heap.peek_key()?.0 > limit {
                return None;
            }
            self.heap.pop()?
        };
        Some((at, event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<Ps> {
        self.settle_deferred();
        match (self.deferred.last(), self.heap.peek_key()) {
            (Some(d), Some((at, _))) => Some(d.0 .0.min(at)),
            (Some(d), None) => Some(d.0 .0),
            (None, Some((at, _))) => Some(at),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.deferred.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.deferred.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::HostTxFree { host: 3 });
        q.push(10, Event::HostTxFree { host: 1 });
        q.push(20, Event::HostTxFree { host: 2 });
        let order: Vec<Ps> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for host in 0..5 {
            q.push(42, Event::HostTxFree { host });
        }
        let hosts: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::HostTxFree { host } => host,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(hosts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, Event::HostTxFree { host: 0 });
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn deferred_lane_merges_in_global_order() {
        // Interleave both lanes at equal and distinct times: pops must
        // follow (time, global insertion sequence) exactly as if all
        // events had gone through one heap.
        let mut q = EventQueue::new();
        q.push_deferred(20, Event::HostTxFree { host: 0 }); // seq 0
        q.push(10, Event::HostTxFree { host: 1 }); // seq 1
        q.push_deferred(10, Event::HostTxFree { host: 2 }); // seq 2
        q.push(20, Event::HostTxFree { host: 3 }); // seq 3
        q.push_deferred(5, Event::HostTxFree { host: 4 }); // seq 4
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(5));
        let order: Vec<(Ps, u32)> = std::iter::from_fn(|| {
            q.pop().map(|(t, e)| match e {
                Event::HostTxFree { host } => (t, host),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![(5, 4), (10, 1), (10, 2), (20, 0), (20, 3)]);
    }

    #[test]
    fn deferred_push_after_pop_resorts() {
        let mut q = EventQueue::new();
        q.push_deferred(30, Event::HostTxFree { host: 0 });
        assert_eq!(q.pop().map(|(t, _)| t), Some(30));
        q.push_deferred(40, Event::HostTxFree { host: 1 });
        q.push_deferred(35, Event::HostTxFree { host: 2 });
        assert_eq!(q.pop().map(|(t, _)| t), Some(35));
        assert_eq!(q.pop().map(|(t, _)| t), Some(40));
        assert!(q.pop().is_none());
    }

    #[test]
    fn packet_pool_recycles_slots() {
        let mut q = EventQueue::new();
        let mk = |len| Packet::raw(0, 0, 1, len, 0, 0);
        q.push_arrival(1, NodeId::Host(1), mk(100));
        q.push_arrival(2, NodeId::Host(1), mk(200));
        let (_, e1) = q.pop().unwrap();
        let Event::Arrive { pkt, .. } = e1 else {
            unreachable!()
        };
        assert_eq!(q.take_packet(pkt).len, 100);
        // The freed slot is reused by the next interned packet.
        q.push_arrival(3, NodeId::Host(1), mk(300));
        let ids: Vec<PacketId> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Arrive { pkt, .. } => pkt,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(ids.len(), 2);
        let lens: Vec<u32> = ids.into_iter().map(|id| q.take_packet(id).len).collect();
        assert_eq!(lens, vec![200, 300]);
    }

    #[test]
    fn scheduled_nodes_are_compact() {
        // The point of interning: a heap payload must stay well under the
        // cache-line size the old fat `Arrive { pkt }` payload blew past,
        // and four sibling keys must fit one cache line.
        assert!(
            std::mem::size_of::<Event>() <= 24,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
        assert_eq!(std::mem::size_of::<Key>(), 16);
    }

    #[test]
    fn quad_heap_drains_sorted_under_stress() {
        let mut q = EventQueue::new();
        let mut x = 7u64;
        let mut n = 0u32;
        for round in 0..50 {
            for _ in 0..97 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.push(x % 1_000, Event::HostTxFree { host: n });
                n += 1;
            }
            // Partially drain between rounds to mix push/pop phases.
            let mut last = 0;
            for _ in 0..(if round % 2 == 0 { 60 } else { 97 }) {
                let Some((t, _)) = q.pop() else { break };
                assert!(t >= last, "heap disorder: {t} after {last}");
                last = t;
            }
        }
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
