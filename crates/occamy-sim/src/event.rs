//! The event queue: a time-ordered heap with deterministic tie-breaking.

use crate::packet::{FlowId, Packet};
use crate::time::Ps;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeId {
    /// Host `index`.
    Host(usize),
    /// Switch `index`.
    Switch(usize),
}

/// Discrete simulation events.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet arrives at a node (after link serialization + propagation).
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// The packet.
        pkt: Packet,
    },
    /// A switch egress port finished serializing its current packet.
    PortFree {
        /// Switch index.
        switch: usize,
        /// Port index.
        port: usize,
    },
    /// A host NIC finished serializing its current packet.
    HostTxFree {
        /// Host index.
        host: usize,
    },
    /// Retry Occamy expulsion once the token bucket has refilled.
    ExpelRetry {
        /// Switch index.
        switch: usize,
        /// Buffer partition index.
        partition: usize,
    },
    /// Retransmission-timer check for a flow.
    ///
    /// Flows keep a single pending timer event plus a soft deadline; a
    /// firing that arrives before the (re-armed) deadline reschedules
    /// itself instead of acting.
    Rto {
        /// Flow index.
        flow: FlowId,
    },
    /// Start an application flow.
    FlowStart {
        /// Flow index.
        flow: FlowId,
    },
    /// Emit the next CBR packet of a raw source.
    CbrEmit {
        /// CBR source index.
        source: usize,
    },
    /// Record a queue-length sample and reschedule until `until`.
    Sample {
        /// Switch to sample.
        switch: usize,
        /// Partition to sample.
        partition: usize,
        /// Sampling period.
        interval: Ps,
        /// Stop sampling after this time.
        until: Ps,
    },
}

struct Scheduled {
    at: Ps,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, insertion sequence).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue.
///
/// Events at equal timestamps pop in insertion order, which makes runs
/// bit-for-bit reproducible regardless of heap internals.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: Ps, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(Ps, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Ps> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::HostTxFree { host: 3 });
        q.push(10, Event::HostTxFree { host: 1 });
        q.push(20, Event::HostTxFree { host: 2 });
        let order: Vec<Ps> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for host in 0..5 {
            q.push(42, Event::HostTxFree { host });
        }
        let hosts: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::HostTxFree { host } => host,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(hosts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, Event::HostTxFree { host: 0 });
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
