//! The event queue: a time-ordered queue with deterministic
//! tie-breaking, backed by a hierarchical timer wheel.
//!
//! The queue is built for event-loop throughput (profiles of the figure
//! sweeps showed queue maintenance dominating wall clock):
//!
//! - **Interned packets**: `Arrive` carries a [`PacketId`] into a slab
//!   pool instead of the ~56-byte [`Packet`], so a queue entry is a few
//!   words. Pool slots are recycled on [`EventQueue::take_packet`],
//!   making the steady-state loop allocation-free.
//! - **Compact events**: indices are `u32`; periodic samplers live in the
//!   world and are referenced by id.
//! - **A timer wheel** ([`crate::timer::TimerWheel`]) instead of a
//!   binary heap. A simulator's pushes are near-future, which is a
//!   min-heap's worst case (every push sifts to near the root), and
//!   transport runs keeping tens of thousands of pending `Rto` timers
//!   made the heap deep for every packet event. The wheel buckets
//!   entries by expiry tick in O(1) amortized and the run loop merges
//!   it in via a single next-deadline probe. Retransmission timers go
//!   through [`EventQueue::push_timer`]; their milliseconds-out
//!   deadlines park on the wheel's high levels, off the packet path,
//!   until the cursor approaches.
//! - **A deferred lane** for the bulk of setup-time events (flow
//!   starts): sorted once instead of cascading through the wheel.
//!
//! Events at equal timestamps pop in insertion order regardless of lane
//! (wheel or deferred — both share one global sequence counter), which
//! keeps runs bit-for-bit reproducible.

use crate::packet::{FlowId, Packet};
use crate::time::Ps;
use crate::timer::TimerWheel;

/// A node in the simulated network.
///
/// Indices are `u32` so an [`Event::Arrive`] — the queue's most common
/// entry — packs into 16 bytes; a wheel entry (key + event) is then two
/// 16-byte halves instead of 40 loose bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeId {
    /// Host `index`.
    Host(u32),
    /// Switch `index`.
    Switch(u32),
}

impl NodeId {
    /// A host node.
    #[inline]
    pub fn host(i: usize) -> NodeId {
        NodeId::Host(i as u32)
    }

    /// A switch node.
    #[inline]
    pub fn switch(i: usize) -> NodeId {
        NodeId::Switch(i as u32)
    }
}

/// Handle to a packet interned in the event queue's pool.
pub type PacketId = u32;

/// Discrete simulation events.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A packet arrives at a node (after link serialization + propagation).
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// The interned packet (redeem with [`EventQueue::take_packet`]).
        pkt: PacketId,
    },
    /// A switch egress port finished serializing its current packet.
    PortFree {
        /// Switch index.
        switch: u32,
        /// Port index.
        port: u32,
    },
    /// A host NIC finished serializing its current packet.
    HostTxFree {
        /// Host index.
        host: u32,
    },
    /// Retry Occamy expulsion once the token bucket has refilled.
    ExpelRetry {
        /// Switch index.
        switch: u32,
        /// Buffer partition index.
        partition: u32,
    },
    /// Retransmission-timer check for a flow.
    ///
    /// Flows keep a single pending timer event plus a soft deadline; a
    /// firing that arrives before the (re-armed) deadline reschedules
    /// itself instead of acting.
    Rto {
        /// Flow index.
        flow: FlowId,
    },
    /// Start an application flow.
    FlowStart {
        /// Flow index.
        flow: FlowId,
    },
    /// Emit the next CBR packet of a raw source.
    CbrEmit {
        /// CBR source index.
        source: u32,
    },
    /// Record a queue-length sample and reschedule per the sampler spec
    /// registered in the world.
    Sample {
        /// Sampler index (into the world's sampler table).
        sampler: u32,
    },
    /// Execute a scheduled fault (link flap / switch drain / host
    /// churn). The index points into the world's immutable fault table
    /// ([`crate::World::faults`]), so the event itself stays compact.
    Fault {
        /// Fault index (into the world's fault table).
        fault: u32,
    },
}

/// Slab of in-flight packets, recycled through a free list.
///
/// `pub(crate)` because the parallel executor gives every event domain
/// its own pool (see `crate::par`).
#[derive(Debug, Default)]
pub(crate) struct PacketPool {
    slots: Vec<Packet>,
    free: Vec<PacketId>,
}

impl PacketPool {
    #[inline]
    pub(crate) fn insert(&mut self, pkt: Packet) -> PacketId {
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = pkt;
                id
            }
            None => {
                self.slots.push(pkt);
                (self.slots.len() - 1) as PacketId
            }
        }
    }

    #[inline]
    pub(crate) fn take(&mut self, id: PacketId) -> Packet {
        self.free.push(id);
        self.slots[id as usize]
    }
}

/// Heap ordering key: `(time, global insertion sequence)`.
pub(crate) use crate::timer::Key;

/// Time-ordered event queue.
///
/// Events at equal timestamps pop in insertion order, which makes runs
/// bit-for-bit reproducible regardless of queue internals.
#[derive(Default)]
pub struct EventQueue {
    /// All runtime events, bucketed by expiry tick.
    wheel: TimerWheel,
    /// Setup-time events, kept sorted descending by `(at, seq)` so the
    /// next one is `last()`; sorted lazily before the first pop after a
    /// batch of [`EventQueue::push_deferred`] calls.
    deferred: Vec<(Key, Event)>,
    deferred_dirty: bool,
    next_seq: u64,
    pool: PacketPool,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    #[inline]
    fn seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedules `event` at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: Ps, event: Event) {
        let seq = self.seq();
        self.wheel.arm((at, seq), event);
    }

    /// Schedules a setup-time event (e.g. a flow start) on the deferred
    /// lane: bulk-sorted once instead of paying heap maintenance on the
    /// hot path. Ordering relative to [`EventQueue::push`] events is
    /// identical — ties still break on global insertion order.
    pub fn push_deferred(&mut self, at: Ps, event: Event) {
        let seq = self.seq();
        self.deferred.push(((at, seq), event));
        self.deferred_dirty = true;
    }

    /// Schedules a timer event (an [`Event::Rto`]). Identical to
    /// [`EventQueue::push`] — the wheel places any entry by its
    /// deadline, so a milliseconds-out timer lands on a high level and
    /// stays clear of the packet path with no separate lane needed.
    /// The distinct name keeps timer call sites greppable and gives
    /// timers a seam should they ever need different handling again.
    #[inline]
    pub fn push_timer(&mut self, at: Ps, event: Event) {
        self.push(at, event);
    }

    /// Interns `pkt` and schedules its arrival at `node`.
    #[inline]
    pub fn push_arrival(&mut self, at: Ps, node: NodeId, pkt: Packet) {
        let pkt = self.pool.insert(pkt);
        self.push(at, Event::Arrive { node, pkt });
    }

    /// Redeems an [`Event::Arrive`] handle, recycling its pool slot.
    #[inline]
    pub fn take_packet(&mut self, id: PacketId) -> Packet {
        self.pool.take(id)
    }

    #[inline]
    fn settle_deferred(&mut self) {
        if self.deferred_dirty {
            // Descending, so the earliest (at, seq) sits at the end.
            self.deferred
                .sort_unstable_by_key(|d| std::cmp::Reverse(d.0));
            self.deferred_dirty = false;
        }
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(Ps, Event)> {
        self.pop_at_most(Ps::MAX)
    }

    /// Pops the earliest event if it is scheduled at or before `limit` —
    /// the run loop's single probe-and-pop (a separate peek would settle
    /// and compare the lanes twice per event).
    pub fn pop_at_most(&mut self, limit: Ps) -> Option<(Ps, Event)> {
        self.settle_deferred();
        // Pick the lane holding the global (time, seq) minimum. The
        // wheel probe is O(1) once its ready buffer is filled.
        let w = self.wheel.peek();
        let from_deferred = match (self.deferred.last(), w) {
            (Some(d), Some(wk)) => d.0 < wk,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let ((at, _), event) = if from_deferred {
            if self.deferred.last()?.0 .0 > limit {
                return None;
            }
            self.deferred.pop()?
        } else {
            if w?.0 > limit {
                return None;
            }
            self.wheel.pop()?
        };
        Some((at, event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<Ps> {
        self.settle_deferred();
        let d = self.deferred.last().map(|e| e.0 .0);
        let w = self.wheel.peek().map(|(at, _)| at);
        [d, w].into_iter().flatten().min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.deferred.len() + self.wheel.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.deferred.is_empty() && self.wheel.is_empty()
    }

    // ---------------------------------------------------------------
    // Crate-internal seams for the parallel executor (`crate::par`).
    //
    // The domain split drains a serial queue *with its ordering keys*
    // into per-domain wheels, and the merge-back reconstructs a queue
    // whose keys and sequence counter are exactly what a serial run
    // would hold — these accessors exist so that round trip is exact.
    // ---------------------------------------------------------------

    /// Pops the earliest event together with its `(time, seq)` key.
    pub(crate) fn pop_keyed(&mut self) -> Option<(Key, Event)> {
        self.settle_deferred();
        let w = self.wheel.peek();
        let from_deferred = match (self.deferred.last(), w) {
            (Some(d), Some(wk)) => d.0 < wk,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if from_deferred {
            self.deferred.pop()
        } else {
            self.wheel.pop()
        }
    }

    /// Schedules `event` under an explicit, already-assigned key.
    pub(crate) fn arm_keyed(&mut self, key: Key, event: Event) {
        self.wheel.arm(key, event);
    }

    /// The next sequence number the queue would assign.
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Overrides the sequence counter (merge-back after a parallel run).
    pub(crate) fn set_next_seq(&mut self, v: u64) {
        self.next_seq = v;
    }

    /// Interns a packet without scheduling anything, returning its id.
    pub(crate) fn intern(&mut self, pkt: Packet) -> PacketId {
        self.pool.insert(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::HostTxFree { host: 3 });
        q.push(10, Event::HostTxFree { host: 1 });
        q.push(20, Event::HostTxFree { host: 2 });
        let order: Vec<Ps> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for host in 0..5 {
            q.push(42, Event::HostTxFree { host });
        }
        let hosts: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::HostTxFree { host } => host,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(hosts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, Event::HostTxFree { host: 0 });
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn deferred_lane_merges_in_global_order() {
        // Interleave both lanes at equal and distinct times: pops must
        // follow (time, global insertion sequence) exactly as if all
        // events had gone through one heap.
        let mut q = EventQueue::new();
        q.push_deferred(20, Event::HostTxFree { host: 0 }); // seq 0
        q.push(10, Event::HostTxFree { host: 1 }); // seq 1
        q.push_deferred(10, Event::HostTxFree { host: 2 }); // seq 2
        q.push(20, Event::HostTxFree { host: 3 }); // seq 3
        q.push_deferred(5, Event::HostTxFree { host: 4 }); // seq 4
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(5));
        let order: Vec<(Ps, u32)> = std::iter::from_fn(|| {
            q.pop().map(|(t, e)| match e {
                Event::HostTxFree { host } => (t, host),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![(5, 4), (10, 1), (10, 2), (20, 0), (20, 3)]);
    }

    #[test]
    fn timer_lane_merges_in_global_order() {
        // Timers, heap events and deferred events at equal and distinct
        // times: pops must follow (time, global insertion sequence)
        // exactly as if all events had gone through one heap.
        let mut q = EventQueue::new();
        q.push_timer(20, Event::HostTxFree { host: 0 }); // seq 0
        q.push(10, Event::HostTxFree { host: 1 }); // seq 1
        q.push_timer(10, Event::HostTxFree { host: 2 }); // seq 2
        q.push_deferred(10, Event::HostTxFree { host: 3 }); // seq 3
        q.push(20, Event::HostTxFree { host: 4 }); // seq 4
        q.push_timer(5, Event::HostTxFree { host: 5 }); // seq 5
        assert_eq!(q.len(), 6);
        assert_eq!(q.peek_time(), Some(5));
        let order: Vec<(Ps, u32)> = std::iter::from_fn(|| {
            q.pop().map(|(t, e)| match e {
                Event::HostTxFree { host } => (t, host),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(
            order,
            vec![(5, 5), (10, 1), (10, 2), (10, 3), (20, 0), (20, 4)]
        );
    }

    #[test]
    fn timer_pop_respects_limit() {
        let mut q = EventQueue::new();
        q.push_timer(50, Event::HostTxFree { host: 0 });
        assert!(q.pop_at_most(49).is_none());
        assert_eq!(q.pop_at_most(50).map(|(t, _)| t), Some(50));
        assert!(q.is_empty());
    }

    #[test]
    fn deferred_push_after_pop_resorts() {
        let mut q = EventQueue::new();
        q.push_deferred(30, Event::HostTxFree { host: 0 });
        assert_eq!(q.pop().map(|(t, _)| t), Some(30));
        q.push_deferred(40, Event::HostTxFree { host: 1 });
        q.push_deferred(35, Event::HostTxFree { host: 2 });
        assert_eq!(q.pop().map(|(t, _)| t), Some(35));
        assert_eq!(q.pop().map(|(t, _)| t), Some(40));
        assert!(q.pop().is_none());
    }

    #[test]
    fn packet_pool_recycles_slots() {
        let mut q = EventQueue::new();
        let mk = |len| Packet::raw(0, 0, 1, len, 0, 0);
        q.push_arrival(1, NodeId::Host(1), mk(100));
        q.push_arrival(2, NodeId::Host(1), mk(200));
        let (_, e1) = q.pop().unwrap();
        let Event::Arrive { pkt, .. } = e1 else {
            unreachable!()
        };
        assert_eq!(q.take_packet(pkt).len, 100);
        // The freed slot is reused by the next interned packet.
        q.push_arrival(3, NodeId::Host(1), mk(300));
        let ids: Vec<PacketId> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Arrive { pkt, .. } => pkt,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(ids.len(), 2);
        let lens: Vec<u32> = ids.into_iter().map(|id| q.take_packet(id).len).collect();
        assert_eq!(lens, vec![200, 300]);
    }

    #[test]
    fn scheduled_nodes_are_compact() {
        // The point of interning and the u32 NodeId: a wheel entry is
        // (16-byte key, 16-byte event) — cascades and slot drains move
        // two aligned halves, not a cache-line-straddling payload.
        assert!(
            std::mem::size_of::<Event>() <= 16,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
        assert_eq!(std::mem::size_of::<Key>(), 16);
    }

    #[test]
    fn wheel_drains_sorted_under_stress() {
        let mut q = EventQueue::new();
        let mut x = 7u64;
        let mut n = 0u32;
        for round in 0..50 {
            for _ in 0..97 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.push(x % 1_000, Event::HostTxFree { host: n });
                n += 1;
            }
            // Partially drain between rounds to mix push/pop phases.
            let mut last = 0;
            for _ in 0..(if round % 2 == 0 { 60 } else { 97 }) {
                let Some((t, _)) = q.pop() else { break };
                assert!(t >= last, "heap disorder: {t} after {last}");
                last = t;
            }
        }
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
