//! Topology builders: single shared-memory switch and leaf-spine fabric.

use crate::event::NodeId;
use crate::host::{Host, HostLink};
use crate::routing::RoutingTable;
use crate::scheduler::Scheduler;
use crate::switch::{BufferPartition, Link, Switch, SwitchPort};
use crate::time::Ps;
use crate::world::World;
use crate::SimConfig;
use occamy_core::{BmKind, QueueConfig, RateEstimator, TokenBucket};
use std::collections::VecDeque;

/// Buffer-management specification for a topology.
#[derive(Debug, Clone)]
pub struct BmSpec {
    /// Which scheme to run.
    pub kind: BmKind,
    /// DT/ABM/Occamy `α` per service class.
    pub alpha_per_class: Vec<f64>,
}

impl BmSpec {
    /// A single-class specification.
    pub fn uniform(kind: BmKind, alpha: f64) -> Self {
        BmSpec {
            kind,
            alpha_per_class: vec![alpha],
        }
    }
}

/// Scheduler specification for every port of a topology.
#[derive(Debug, Clone, Copy)]
pub enum SchedKind {
    /// Single-class FIFO.
    Fifo,
    /// Strict priority across classes (class 0 first).
    StrictPriority,
    /// Deficit Round Robin with the given quantum in bytes.
    Drr {
        /// Per-visit quantum in bytes.
        quantum: u64,
    },
}

impl SchedKind {
    fn build(self, classes: usize) -> Scheduler {
        match self {
            SchedKind::Fifo => Scheduler::Fifo,
            SchedKind::StrictPriority => Scheduler::StrictPriority,
            SchedKind::Drr { quantum } => Scheduler::drr(classes, quantum),
        }
    }

    /// ABM's priority classes: under strict priority each class is its own
    /// priority level; under FIFO/DRR all classes share one level.
    fn abm_priority(self, class: usize) -> u8 {
        match self {
            SchedKind::StrictPriority => class as u8,
            _ => 0,
        }
    }
}

/// Configuration of a single-switch topology (one host per port).
#[derive(Debug, Clone)]
pub struct SingleSwitchCfg {
    /// Per-host access-link rates (one port per host).
    pub host_rates_bps: Vec<u64>,
    /// One-way propagation per link.
    pub prop_ps: Ps,
    /// Shared buffer size in bytes (one partition).
    pub buffer_bytes: u64,
    /// Service classes per port.
    pub classes: usize,
    /// Buffer management.
    pub bm: BmSpec,
    /// Port scheduler.
    pub sched: SchedKind,
    /// Simulation parameters.
    pub sim: SimConfig,
}

/// Builds a world with one switch and `host_rates_bps.len()` hosts.
///
/// This is the substrate for the paper's testbed experiments: the Huawei
/// CE6865 motivation setup (Fig. 6), the Tofino micro-benchmarks
/// (Figs. 11–12, with per-port rates 100/100/10/10 Gbps) and the DPDK
/// software switch (Figs. 13–16).
pub fn single_switch(c: SingleSwitchCfg) -> World {
    let n = c.host_rates_bps.len();
    assert!(n >= 2, "need at least two hosts");
    assert!(c.classes >= 1, "need at least one class");
    assert_eq!(c.bm.alpha_per_class.len(), c.classes, "one alpha per class");
    let hosts: Vec<Host> = (0..n)
        .map(|h| {
            Host::new(
                h,
                HostLink {
                    to_switch: 0,
                    rate_bps: c.host_rates_bps[h],
                    prop_ps: c.prop_ps,
                },
            )
        })
        .collect();

    let ports: Vec<SwitchPort> = (0..n)
        .map(|p| SwitchPort {
            link: Link {
                to: NodeId::Host(p),
                rate_bps: c.host_rates_bps[p],
                prop_ps: c.prop_ps,
            },
            queues: (0..c.classes).map(|_| VecDeque::new()).collect(),
            sched: c.sched.build(c.classes),
            tx_busy: false,
        })
        .collect();

    let partition = build_partition(
        &c.bm,
        c.sched,
        c.buffer_bytes,
        &(0..n).collect::<Vec<_>>(),
        &c.host_rates_bps,
        c.classes,
        &c.sim,
    );
    let total_rate: u64 = c.host_rates_bps.iter().sum();
    let routing = RoutingTable::new((0..n).map(|h| vec![h as u16]).collect());
    let switch = Switch {
        id: 0,
        ports,
        partitions: vec![partition],
        port_partition: vec![0; n],
        port_local: (0..n).collect(),
        classes: c.classes,
        routing,
        write_rate: RateEstimator::new(10_000, 0.0),
        read_rate: RateEstimator::new(10_000, 0.0),
        total_membw_bps: 2.0 * total_rate as f64,
    };
    World::new(c.sim, hosts, vec![switch])
}

/// Configuration of a leaf-spine topology (paper §6.4).
#[derive(Debug, Clone)]
pub struct LeafSpineCfg {
    /// Spine switch count.
    pub spines: usize,
    /// Leaf switch count.
    pub leaves: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Host access-link rate.
    pub host_rate_bps: u64,
    /// Leaf↔spine link rate.
    pub fabric_rate_bps: u64,
    /// One-way propagation per hop (8 hops per across-spine RTT).
    pub link_prop_ps: Ps,
    /// Shared buffer per group of 8 ports (Tomahawk-style partitioning).
    pub buffer_per_8ports_bytes: u64,
    /// Service classes per port.
    pub classes: usize,
    /// Buffer management.
    pub bm: BmSpec,
    /// Port scheduler.
    pub sched: SchedKind,
    /// Simulation parameters.
    pub sim: SimConfig,
}

impl LeafSpineCfg {
    /// The paper's §6.4 topology: 8 spines, 8 leaves, 16 hosts per leaf,
    /// 100 Gbps links, 80 µs base RTT, 4 MB per 8 ports.
    pub fn paper(bm: BmSpec, sim: SimConfig) -> Self {
        LeafSpineCfg {
            spines: 8,
            leaves: 8,
            hosts_per_leaf: 16,
            host_rate_bps: 100_000_000_000,
            fabric_rate_bps: 100_000_000_000,
            link_prop_ps: 10 * crate::time::US,
            buffer_per_8ports_bytes: 4_000_000,
            classes: 1,
            bm,
            sched: SchedKind::Fifo,
            sim,
        }
    }

    /// Total host count.
    pub fn n_hosts(&self) -> usize {
        self.leaves * self.hosts_per_leaf
    }
}

/// Builds the leaf-spine world. Hosts are numbered leaf-major (host `h`
/// sits on leaf `h / hosts_per_leaf`); switch ids are leaves first, then
/// spines.
pub fn leaf_spine(c: LeafSpineCfg) -> World {
    assert!(c.spines >= 1 && c.leaves >= 2, "need a real fabric");
    let hpl = c.hosts_per_leaf;
    let n_hosts = c.n_hosts();
    let hosts: Vec<Host> = (0..n_hosts)
        .map(|h| {
            Host::new(
                h,
                HostLink {
                    to_switch: h / hpl,
                    rate_bps: c.host_rate_bps,
                    prop_ps: c.link_prop_ps,
                },
            )
        })
        .collect();

    let mut switches = Vec::with_capacity(c.leaves + c.spines);
    // Leaves: ports 0..hpl are down-links, hpl..hpl+spines are up-links.
    for leaf in 0..c.leaves {
        let mut ports = Vec::new();
        let mut rates = Vec::new();
        for local in 0..hpl {
            ports.push(SwitchPort {
                link: Link {
                    to: NodeId::Host(leaf * hpl + local),
                    rate_bps: c.host_rate_bps,
                    prop_ps: c.link_prop_ps,
                },
                queues: (0..c.classes).map(|_| VecDeque::new()).collect(),
                sched: c.sched.build(c.classes),
                tx_busy: false,
            });
            rates.push(c.host_rate_bps);
        }
        for spine in 0..c.spines {
            ports.push(SwitchPort {
                link: Link {
                    to: NodeId::Switch(c.leaves + spine),
                    rate_bps: c.fabric_rate_bps,
                    prop_ps: c.link_prop_ps,
                },
                queues: (0..c.classes).map(|_| VecDeque::new()).collect(),
                sched: c.sched.build(c.classes),
                tx_busy: false,
            });
            rates.push(c.fabric_rate_bps);
        }
        // Routing: local hosts via their down port, others via ECMP
        // across all up-links.
        let up_ports: Vec<u16> = (hpl..hpl + c.spines).map(|p| p as u16).collect();
        let routing = RoutingTable::new(
            (0..n_hosts)
                .map(|dst| {
                    if dst / hpl == leaf {
                        vec![(dst % hpl) as u16]
                    } else {
                        up_ports.clone()
                    }
                })
                .collect(),
        );
        switches.push(assemble_switch(leaf, ports, rates, routing, &c));
    }
    // Spines: port `l` goes down to leaf `l`.
    for spine in 0..c.spines {
        let mut ports = Vec::new();
        let mut rates = Vec::new();
        for leaf in 0..c.leaves {
            ports.push(SwitchPort {
                link: Link {
                    to: NodeId::Switch(leaf),
                    rate_bps: c.fabric_rate_bps,
                    prop_ps: c.link_prop_ps,
                },
                queues: (0..c.classes).map(|_| VecDeque::new()).collect(),
                sched: c.sched.build(c.classes),
                tx_busy: false,
            });
            rates.push(c.fabric_rate_bps);
        }
        let routing = RoutingTable::new((0..n_hosts).map(|dst| vec![(dst / hpl) as u16]).collect());
        switches.push(assemble_switch(c.leaves + spine, ports, rates, routing, &c));
    }
    World::new(c.sim.clone(), hosts, switches)
}

fn assemble_switch(
    id: usize,
    ports: Vec<SwitchPort>,
    rates: Vec<u64>,
    routing: RoutingTable,
    c: &LeafSpineCfg,
) -> Switch {
    let n = ports.len();
    let mut partitions = Vec::new();
    let mut port_partition = vec![0; n];
    let mut port_local = vec![0; n];
    let all_ports: Vec<usize> = (0..n).collect();
    for (pi, chunk) in all_ports.chunks(8).enumerate() {
        for (li, &p) in chunk.iter().enumerate() {
            port_partition[p] = pi;
            port_local[p] = li;
        }
        partitions.push(build_partition(
            &c.bm,
            c.sched,
            c.buffer_per_8ports_bytes * chunk.len() as u64 / 8,
            chunk,
            &rates,
            c.classes,
            &c.sim,
        ));
    }
    let total_rate: u64 = rates.iter().sum();
    Switch {
        id,
        ports,
        partitions,
        port_partition,
        port_local,
        classes: c.classes,
        routing,
        write_rate: RateEstimator::new(10_000, 0.0),
        read_rate: RateEstimator::new(10_000, 0.0),
        total_membw_bps: 2.0 * total_rate as f64,
    }
}

fn build_partition(
    bm: &BmSpec,
    sched: SchedKind,
    buffer_bytes: u64,
    ports: &[usize],
    rates: &[u64],
    classes: usize,
    sim: &SimConfig,
) -> BufferPartition {
    let nq = ports.len() * classes;
    let mut qc = QueueConfig::uniform(nq, 1, 1.0);
    for (li, &p) in ports.iter().enumerate() {
        for class in 0..classes {
            let q = li * classes + class;
            qc.alpha[q] = bm.alpha_per_class[class];
            qc.port_rate_bps[q] = rates[p];
            qc.priority[q] = sched.abm_priority(class);
        }
    }
    let reactive = matches!(bm.kind, BmKind::Occamy | BmKind::OccamyLongest);
    // Token generation at the partition's aggregate forwarding capacity,
    // in cells/s (paper §5.3).
    let agg_rate: u64 = ports.iter().map(|&p| rates[p]).sum();
    let cells_per_sec = agg_rate as f64 / 8.0 / sim.cell_bytes as f64 * sim.expel_rate_factor;
    BufferPartition {
        state: occamy_core::BufferState::new(buffer_bytes, nq),
        bm: bm.kind.build(qc),
        tb: TokenBucket::new(cells_per_sec, sim.expel_bucket_cells),
        reactive,
        expel_armed: false,
        ports: ports.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm() -> BmSpec {
        BmSpec::uniform(BmKind::Dt, 1.0)
    }

    #[test]
    fn single_switch_shape() {
        let w = single_switch(SingleSwitchCfg {
            host_rates_bps: vec![10_000_000_000; 4],
            prop_ps: 1_000,
            buffer_bytes: 400_000,
            classes: 2,
            bm: BmSpec {
                kind: BmKind::Dt,
                alpha_per_class: vec![8.0, 1.0],
            },
            sched: SchedKind::StrictPriority,
            sim: SimConfig::default(),
        });
        assert_eq!(w.hosts.len(), 4);
        assert_eq!(w.switches.len(), 1);
        let sw = &w.switches[0];
        assert_eq!(sw.ports.len(), 4);
        assert_eq!(sw.partitions.len(), 1);
        assert_eq!(sw.partitions[0].state.num_queues(), 8);
        assert_eq!(sw.partitions[0].state.capacity(), 400_000);
        // Port 2, class 1 maps to queue 5 and back.
        assert_eq!(sw.queue_index(2, 1), 5);
        assert_eq!(sw.queue_location(0, 5), (2, 1));
    }

    #[test]
    fn leaf_spine_paper_shape() {
        let w = leaf_spine(LeafSpineCfg::paper(bm(), SimConfig::large_scale()));
        assert_eq!(w.hosts.len(), 128);
        assert_eq!(w.switches.len(), 16);
        // Leaf: 16 down + 8 up = 24 ports → 3 partitions of 8 → 12 MB.
        let leaf = &w.switches[0];
        assert_eq!(leaf.ports.len(), 24);
        assert_eq!(leaf.partitions.len(), 3);
        let leaf_buf: u64 = leaf.partitions.iter().map(|p| p.state.capacity()).sum();
        assert_eq!(leaf_buf, 12_000_000);
        // Spine: 8 ports → 1 partition → 8 MB per switch? No: 8 ports →
        // one 4 MB partition (4 MB per 8 ports), paper says spines have
        // 8 MB total because they count 16 ports per spine; our spines
        // have `leaves` = 8 ports, so 4 MB.
        let spine = &w.switches[8];
        assert_eq!(spine.ports.len(), 8);
        assert_eq!(spine.partitions.len(), 1);
        assert_eq!(spine.partitions[0].state.capacity(), 4_000_000);
    }

    #[test]
    fn leaf_routing_separates_local_and_remote() {
        let w = leaf_spine(LeafSpineCfg::paper(bm(), SimConfig::large_scale()));
        let leaf0 = &w.switches[0];
        // Local host 3: single down port.
        assert_eq!(leaf0.routing.candidates(3), &[3]);
        // Remote host 17 (leaf 1): ECMP across the 8 up-links.
        assert_eq!(leaf0.routing.candidates(17).len(), 8);
        // Spine 0 routes host 17 down to leaf 1.
        let spine0 = &w.switches[8];
        assert_eq!(spine0.routing.candidates(17), &[1]);
    }

    #[test]
    fn occamy_partitions_are_reactive() {
        let w = single_switch(SingleSwitchCfg {
            host_rates_bps: vec![10_000_000_000; 2],
            prop_ps: 1_000,
            buffer_bytes: 100_000,
            classes: 1,
            bm: BmSpec::uniform(BmKind::Occamy, 8.0),
            sched: SchedKind::Fifo,
            sim: SimConfig::default(),
        });
        assert!(w.switches[0].partitions[0].reactive);
        let w2 = single_switch(SingleSwitchCfg {
            host_rates_bps: vec![10_000_000_000; 2],
            prop_ps: 1_000,
            buffer_bytes: 100_000,
            classes: 1,
            bm: BmSpec::uniform(BmKind::Pushout, 1.0),
            sched: SchedKind::Fifo,
            sim: SimConfig::default(),
        });
        assert!(
            !w2.switches[0].partitions[0].reactive,
            "Pushout evicts synchronously, not via the reactive process"
        );
    }
}
