//! Topology builders: single shared-memory switch, leaf-spine, k-ary
//! fat-tree and classic 3-tier (access/aggregation/core) fabrics.
//!
//! Every fabric builder also exports a [`DomainMap`]: a partition of
//! the fabric into *event domains* (pods, or leaf/spine groups) that
//! the deterministic parallel executor uses for domain-decomposed
//! runs (`SimConfig::threads > 1`). Serial runs ignore it.

use crate::event::NodeId;
use crate::host::{Host, HostLink};
use crate::routing::RoutingTable;
use crate::scheduler::Scheduler;
use crate::switch::{BufferPartition, Link, Switch, SwitchPort};
use crate::time::Ps;
use crate::world::World;
use crate::SimConfig;
use occamy_core::{BmKind, BmTuning, QueueConfig, RateEstimator, TokenBucket};
use std::collections::VecDeque;

/// A partition of a fabric's hosts and switches into event domains for
/// domain-decomposed parallel execution.
///
/// Domains exchange packets only over links whose one-way propagation
/// delay is at least [`DomainMap::lookahead_ps`]; conservative
/// synchronization uses that bound as its lookahead: events executed
/// in the window `[W, W + lookahead)` can only schedule cross-domain
/// arrivals at `>= W + lookahead`, so domains are causally independent
/// within a window. Every host and switch belongs to exactly one
/// domain (pinned by `tests/domain_props.rs`).
#[derive(Debug, Clone)]
pub struct DomainMap {
    /// Domain of each host, indexed by host id.
    pub host_domain: Vec<u32>,
    /// Domain of each switch, indexed by switch id.
    pub switch_domain: Vec<u32>,
    /// Minimum one-way propagation delay over all cross-domain links;
    /// `0` when the partition has no cross-domain link (parallel
    /// execution then stays disabled).
    pub lookahead_ps: Ps,
    n_domains: usize,
}

impl DomainMap {
    /// Builds a map from per-component domain assignments, deriving the
    /// lookahead from the actual link delays of `hosts` / `switches`.
    pub fn new(
        host_domain: Vec<u32>,
        switch_domain: Vec<u32>,
        hosts: &[Host],
        switches: &[Switch],
    ) -> Self {
        assert_eq!(host_domain.len(), hosts.len());
        assert_eq!(switch_domain.len(), switches.len());
        let n_domains = host_domain
            .iter()
            .chain(&switch_domain)
            .map(|&d| d as usize + 1)
            .max()
            .unwrap_or(0);
        let mut lookahead = Ps::MAX;
        let mut any_cross = false;
        for (h, host) in hosts.iter().enumerate() {
            if host_domain[h] != switch_domain[host.link.to_switch] {
                lookahead = lookahead.min(host.link.prop_ps);
                any_cross = true;
            }
        }
        for (s, sw) in switches.iter().enumerate() {
            for p in &sw.ports {
                let peer = match p.link.to {
                    NodeId::Host(h) => host_domain[h as usize],
                    NodeId::Switch(t) => switch_domain[t as usize],
                };
                if peer != switch_domain[s] {
                    lookahead = lookahead.min(p.link.prop_ps);
                    any_cross = true;
                }
            }
        }
        DomainMap {
            host_domain,
            switch_domain,
            lookahead_ps: if any_cross { lookahead } else { 0 },
            n_domains,
        }
    }

    /// Number of domains.
    pub fn n_domains(&self) -> usize {
        self.n_domains
    }
}

/// Buffer-management specification for a topology.
#[derive(Debug, Clone)]
pub struct BmSpec {
    /// Which scheme to run.
    pub kind: BmKind,
    /// DT/ABM/Occamy `α` per service class.
    pub alpha_per_class: Vec<f64>,
    /// Scheme-specific tuning (BShare delay target, DAMQ reserve split);
    /// the default reproduces each scheme's canonical constants.
    pub tuning: BmTuning,
}

impl BmSpec {
    /// A single-class specification.
    pub fn uniform(kind: BmKind, alpha: f64) -> Self {
        Self::per_class(kind, vec![alpha])
    }

    /// A multi-class specification with default tuning.
    pub fn per_class(kind: BmKind, alpha_per_class: Vec<f64>) -> Self {
        BmSpec {
            kind,
            alpha_per_class,
            tuning: BmTuning::default(),
        }
    }
}

/// Scheduler specification for every port of a topology.
#[derive(Debug, Clone, Copy)]
pub enum SchedKind {
    /// Single-class FIFO.
    Fifo,
    /// Strict priority across classes (class 0 first).
    StrictPriority,
    /// Deficit Round Robin with the given quantum in bytes.
    Drr {
        /// Per-visit quantum in bytes.
        quantum: u64,
    },
}

impl SchedKind {
    fn build(self, classes: usize) -> Scheduler {
        match self {
            SchedKind::Fifo => Scheduler::Fifo,
            SchedKind::StrictPriority => Scheduler::StrictPriority,
            SchedKind::Drr { quantum } => Scheduler::drr(classes, quantum),
        }
    }

    /// ABM's priority classes: under strict priority each class is its own
    /// priority level; under FIFO/DRR all classes share one level.
    fn abm_priority(self, class: usize) -> u8 {
        match self {
            SchedKind::StrictPriority => class as u8,
            _ => 0,
        }
    }
}

/// Configuration of a single-switch topology (one host per port).
#[derive(Debug, Clone)]
pub struct SingleSwitchCfg {
    /// Per-host access-link rates (one port per host).
    pub host_rates_bps: Vec<u64>,
    /// One-way propagation per link.
    pub prop_ps: Ps,
    /// Shared buffer size in bytes (one partition).
    pub buffer_bytes: u64,
    /// Service classes per port.
    pub classes: usize,
    /// Buffer management.
    pub bm: BmSpec,
    /// Port scheduler.
    pub sched: SchedKind,
    /// Simulation parameters.
    pub sim: SimConfig,
}

/// Builds a world with one switch and `host_rates_bps.len()` hosts.
///
/// This is the substrate for the paper's testbed experiments: the Huawei
/// CE6865 motivation setup (Fig. 6), the Tofino micro-benchmarks
/// (Figs. 11–12, with per-port rates 100/100/10/10 Gbps) and the DPDK
/// software switch (Figs. 13–16).
pub fn single_switch(c: SingleSwitchCfg) -> World {
    let n = c.host_rates_bps.len();
    assert!(n >= 2, "need at least two hosts");
    assert!(c.classes >= 1, "need at least one class");
    assert_eq!(c.bm.alpha_per_class.len(), c.classes, "one alpha per class");
    let hosts: Vec<Host> = (0..n)
        .map(|h| {
            Host::new(
                h,
                HostLink {
                    to_switch: 0,
                    rate_bps: c.host_rates_bps[h],
                    prop_ps: c.prop_ps,
                },
            )
        })
        .collect();

    let ports: Vec<SwitchPort> = (0..n)
        .map(|p| SwitchPort {
            link: Link {
                to: NodeId::host(p),
                rate_bps: c.host_rates_bps[p],
                prop_ps: c.prop_ps,
            },
            queues: (0..c.classes).map(|_| VecDeque::new()).collect(),
            sched: c.sched.build(c.classes),
            tx_busy: false,
        })
        .collect();

    let partition = build_partition(
        &c.bm,
        c.sched,
        c.buffer_bytes,
        &(0..n).collect::<Vec<_>>(),
        &c.host_rates_bps,
        c.classes,
        &c.sim,
    );
    let total_rate: u64 = c.host_rates_bps.iter().sum();
    let routing = RoutingTable::new((0..n).map(|h| vec![h as u16]).collect());
    let switch = Switch {
        id: 0,
        tier: 0,
        ports,
        partitions: vec![partition],
        port_partition: vec![0; n],
        port_local: (0..n).collect(),
        classes: c.classes,
        routing,
        disabled_ports: vec![false; n],
        n_disabled: 0,
        draining: false,
        xp: None,
        write_rate: RateEstimator::new(10_000, 0.0),
        read_rate: RateEstimator::new(10_000, 0.0),
        total_membw_bps: 2.0 * total_rate as f64,
    };
    let mut w = World::new(c.sim, hosts, vec![switch]);
    // One switch means one domain: runs stay serial.
    w.domains = Some(DomainMap::new(vec![0; n], vec![0], &w.hosts, &w.switches));
    w
}

/// Configuration of a leaf-spine topology (paper §6.4).
#[derive(Debug, Clone)]
pub struct LeafSpineCfg {
    /// Spine switch count.
    pub spines: usize,
    /// Leaf switch count.
    pub leaves: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Host access-link rate.
    pub host_rate_bps: u64,
    /// Leaf↔spine link rate.
    pub fabric_rate_bps: u64,
    /// One-way propagation per hop (8 hops per across-spine RTT).
    pub link_prop_ps: Ps,
    /// Shared buffer per group of 8 ports (Tomahawk-style partitioning).
    pub buffer_per_8ports_bytes: u64,
    /// Service classes per port.
    pub classes: usize,
    /// Buffer management.
    pub bm: BmSpec,
    /// Port scheduler.
    pub sched: SchedKind,
    /// Simulation parameters.
    pub sim: SimConfig,
}

impl LeafSpineCfg {
    /// The paper's §6.4 topology: 8 spines, 8 leaves, 16 hosts per leaf,
    /// 100 Gbps links, 80 µs base RTT, 4 MB per 8 ports.
    pub fn paper(bm: BmSpec, sim: SimConfig) -> Self {
        LeafSpineCfg {
            spines: 8,
            leaves: 8,
            hosts_per_leaf: 16,
            host_rate_bps: 100_000_000_000,
            fabric_rate_bps: 100_000_000_000,
            link_prop_ps: 10 * crate::time::US,
            buffer_per_8ports_bytes: 4_000_000,
            classes: 1,
            bm,
            sched: SchedKind::Fifo,
            sim,
        }
    }

    /// Total host count.
    pub fn n_hosts(&self) -> usize {
        self.leaves * self.hosts_per_leaf
    }
}

/// Builds the leaf-spine world. Hosts are numbered leaf-major (host `h`
/// sits on leaf `h / hosts_per_leaf`); switch ids are leaves first, then
/// spines.
pub fn leaf_spine(c: LeafSpineCfg) -> World {
    assert!(c.spines >= 1 && c.leaves >= 2, "need a real fabric");
    let hpl = c.hosts_per_leaf;
    let n_hosts = c.n_hosts();
    let hosts: Vec<Host> = (0..n_hosts)
        .map(|h| {
            Host::new(
                h,
                HostLink {
                    to_switch: h / hpl,
                    rate_bps: c.host_rate_bps,
                    prop_ps: c.link_prop_ps,
                },
            )
        })
        .collect();

    let mut switches = Vec::with_capacity(c.leaves + c.spines);
    let sh = shared(&c.bm, c.sched, c.buffer_per_8ports_bytes, c.classes, &c.sim);
    // Leaves: ports 0..hpl are down-links, hpl..hpl+spines are up-links.
    for leaf in 0..c.leaves {
        let mut ports = Vec::new();
        let mut rates = Vec::new();
        for local in 0..hpl {
            ports.push(SwitchPort {
                link: Link {
                    to: NodeId::host(leaf * hpl + local),
                    rate_bps: c.host_rate_bps,
                    prop_ps: c.link_prop_ps,
                },
                queues: (0..c.classes).map(|_| VecDeque::new()).collect(),
                sched: c.sched.build(c.classes),
                tx_busy: false,
            });
            rates.push(c.host_rate_bps);
        }
        for spine in 0..c.spines {
            ports.push(SwitchPort {
                link: Link {
                    to: NodeId::switch(c.leaves + spine),
                    rate_bps: c.fabric_rate_bps,
                    prop_ps: c.link_prop_ps,
                },
                queues: (0..c.classes).map(|_| VecDeque::new()).collect(),
                sched: c.sched.build(c.classes),
                tx_busy: false,
            });
            rates.push(c.fabric_rate_bps);
        }
        // Routing: local hosts via their down port, others via ECMP
        // across all up-links.
        let up_ports: Vec<u16> = (hpl..hpl + c.spines).map(|p| p as u16).collect();
        let routing = RoutingTable::new(
            (0..n_hosts)
                .map(|dst| {
                    if dst / hpl == leaf {
                        vec![(dst % hpl) as u16]
                    } else {
                        up_ports.clone()
                    }
                })
                .collect(),
        );
        switches.push(assemble_switch(leaf, ports, rates, routing, &sh));
    }
    // Spines: port `l` goes down to leaf `l`.
    for spine in 0..c.spines {
        let mut ports = Vec::new();
        let mut rates = Vec::new();
        for leaf in 0..c.leaves {
            ports.push(SwitchPort {
                link: Link {
                    to: NodeId::switch(leaf),
                    rate_bps: c.fabric_rate_bps,
                    prop_ps: c.link_prop_ps,
                },
                queues: (0..c.classes).map(|_| VecDeque::new()).collect(),
                sched: c.sched.build(c.classes),
                tx_busy: false,
            });
            rates.push(c.fabric_rate_bps);
        }
        let routing = RoutingTable::new((0..n_hosts).map(|dst| vec![(dst / hpl) as u16]).collect());
        switches.push(assemble_switch(
            c.leaves + spine,
            ports,
            rates,
            routing,
            &sh,
        ));
    }
    let mut w = World::new(c.sim.clone(), hosts, switches);
    for sw in &mut w.switches {
        sw.tier = if sw.id < c.leaves { 0 } else { 1 };
    }
    // Domains: each leaf plus its hosts, then each spine on its own.
    let host_domain = (0..n_hosts).map(|h| (h / hpl) as u32).collect();
    let switch_domain = (0..c.leaves + c.spines).map(|s| s as u32).collect();
    w.domains = Some(DomainMap::new(
        host_domain,
        switch_domain,
        &w.hosts,
        &w.switches,
    ));
    w
}

/// Configuration of a k-ary fat-tree (Al-Fares et al.): `k` pods of
/// `k/2` edge and `k/2` aggregation switches, `(k/2)²` core switches,
/// `k³/4` hosts.
#[derive(Debug, Clone)]
pub struct FatTreeCfg {
    /// Pod arity. Must be even and ≥ 2; `k = 4` gives 16 hosts.
    pub k: usize,
    /// Host access-link rate.
    pub host_rate_bps: u64,
    /// Edge↔aggregation and aggregation↔core link rate.
    pub fabric_rate_bps: u64,
    /// One-way propagation per link.
    pub link_prop_ps: Ps,
    /// Shared buffer per group of 8 ports.
    pub buffer_per_8ports_bytes: u64,
    /// Service classes per port.
    pub classes: usize,
    /// Buffer management.
    pub bm: BmSpec,
    /// Port scheduler.
    pub sched: SchedKind,
    /// Simulation parameters.
    pub sim: SimConfig,
}

impl FatTreeCfg {
    /// Total host count: `k³/4`.
    pub fn n_hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Total switch count: `k²` edge+aggregation plus `(k/2)²` core.
    pub fn n_switches(&self) -> usize {
        self.k * self.k + (self.k / 2) * (self.k / 2)
    }
}

/// Builds the k-ary fat-tree world.
///
/// Hosts are numbered edge-major (host `h` sits under edge switch
/// `h / (k/2)`); switch ids are edges first (pod-major), then
/// aggregations (pod-major), then cores. Aggregation switch `a` of each
/// pod uplinks to core group `a` (cores `a·k/2 .. (a+1)·k/2`), the
/// standard fat-tree wiring. Routing is shortest-path with ECMP fan-out
/// on every up-stage ([`RoutingTable`] hashes the flow id, §6.4).
pub fn fat_tree(c: FatTreeCfg) -> World {
    assert!(c.k >= 2 && c.k % 2 == 0, "fat-tree arity must be even, ≥ 2");
    let half = c.k / 2;
    let hosts_per_pod = half * half;
    let n_hosts = c.n_hosts();
    let n_edges = c.k * half;
    let n_aggs = c.k * half;
    let sh = shared(&c.bm, c.sched, c.buffer_per_8ports_bytes, c.classes, &c.sim);

    let hosts: Vec<Host> = (0..n_hosts)
        .map(|h| {
            Host::new(
                h,
                HostLink {
                    to_switch: h / half,
                    rate_bps: c.host_rate_bps,
                    prop_ps: c.link_prop_ps,
                },
            )
        })
        .collect();

    let mut switches = Vec::with_capacity(c.n_switches());
    // Edge switches: ports 0..k/2 down to hosts, k/2..k up to the pod's
    // aggregation switches.
    for edge in 0..n_edges {
        let pod = edge / half;
        let mut ports = Vec::with_capacity(c.k);
        let mut rates = Vec::with_capacity(c.k);
        for local in 0..half {
            ports.push(port(
                NodeId::host(edge * half + local),
                c.host_rate_bps,
                c.link_prop_ps,
                c.classes,
                c.sched,
            ));
            rates.push(c.host_rate_bps);
        }
        for a in 0..half {
            ports.push(port(
                NodeId::switch(n_edges + pod * half + a),
                c.fabric_rate_bps,
                c.link_prop_ps,
                c.classes,
                c.sched,
            ));
            rates.push(c.fabric_rate_bps);
        }
        let up: Vec<u16> = (half..c.k).map(|p| p as u16).collect();
        let routing = RoutingTable::new(
            (0..n_hosts)
                .map(|dst| {
                    if dst / half == edge {
                        vec![(dst % half) as u16]
                    } else {
                        up.clone()
                    }
                })
                .collect(),
        );
        switches.push(assemble_switch(edge, ports, rates, routing, &sh));
    }
    // Aggregation switches: ports 0..k/2 down to the pod's edges,
    // k/2..k up to the switch's core group.
    for agg in 0..n_aggs {
        let pod = agg / half;
        let group = agg % half;
        let mut ports = Vec::with_capacity(c.k);
        let mut rates = Vec::with_capacity(c.k);
        for e in 0..half {
            ports.push(port(
                NodeId::switch(pod * half + e),
                c.fabric_rate_bps,
                c.link_prop_ps,
                c.classes,
                c.sched,
            ));
            rates.push(c.fabric_rate_bps);
        }
        for i in 0..half {
            ports.push(port(
                NodeId::switch(n_edges + n_aggs + group * half + i),
                c.fabric_rate_bps,
                c.link_prop_ps,
                c.classes,
                c.sched,
            ));
            rates.push(c.fabric_rate_bps);
        }
        let up: Vec<u16> = (half..c.k).map(|p| p as u16).collect();
        let routing = RoutingTable::new(
            (0..n_hosts)
                .map(|dst| {
                    if dst / hosts_per_pod == pod {
                        vec![((dst / half) % half) as u16]
                    } else {
                        up.clone()
                    }
                })
                .collect(),
        );
        switches.push(assemble_switch(n_edges + agg, ports, rates, routing, &sh));
    }
    // Core switches: port p goes down to this core's aggregation switch
    // in pod p.
    for core in 0..half * half {
        let group = core / half;
        let mut ports = Vec::with_capacity(c.k);
        let mut rates = Vec::with_capacity(c.k);
        for pod in 0..c.k {
            ports.push(port(
                NodeId::switch(n_edges + pod * half + group),
                c.fabric_rate_bps,
                c.link_prop_ps,
                c.classes,
                c.sched,
            ));
            rates.push(c.fabric_rate_bps);
        }
        let routing = RoutingTable::new(
            (0..n_hosts)
                .map(|dst| vec![(dst / hosts_per_pod) as u16])
                .collect(),
        );
        switches.push(assemble_switch(
            n_edges + n_aggs + core,
            ports,
            rates,
            routing,
            &sh,
        ));
    }
    let mut w = World::new(c.sim.clone(), hosts, switches);
    for sw in &mut w.switches {
        sw.tier = if sw.id < n_edges {
            0
        } else if sw.id < n_edges + n_aggs {
            1
        } else {
            2
        };
    }
    // Domains: pod p owns its hosts, edges and aggregations (all
    // intra-pod links stay domain-local); each core switch is its own
    // domain, so agg↔core links are the only cross-domain edges
    // alongside inter-pod traffic.
    let host_domain = (0..n_hosts).map(|h| (h / hosts_per_pod) as u32).collect();
    let switch_domain = (0..w.switches.len())
        .map(|s| {
            if s < n_edges {
                (s / half) as u32
            } else if s < n_edges + n_aggs {
                ((s - n_edges) / half) as u32
            } else {
                (c.k + (s - n_edges - n_aggs)) as u32
            }
        })
        .collect();
    w.domains = Some(DomainMap::new(
        host_domain,
        switch_domain,
        &w.hosts,
        &w.switches,
    ));
    w
}

/// Configuration of a classic 3-tier (access / aggregation / core)
/// data-center fabric with an explicit access-layer oversubscription
/// knob.
#[derive(Debug, Clone)]
pub struct ThreeTierCfg {
    /// Pod count (a pod = one aggregation group plus its access layer).
    pub pods: usize,
    /// Access switches per pod.
    pub access_per_pod: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// Core switches (each connects to every aggregation switch).
    pub cores: usize,
    /// Hosts per access switch.
    pub hosts_per_access: usize,
    /// Host access-link rate.
    pub host_rate_bps: u64,
    /// Aggregation↔core link rate.
    pub core_rate_bps: u64,
    /// Access-layer oversubscription ratio: host-facing capacity over
    /// uplink capacity. `1.0` is non-blocking; `4.0` means the uplinks
    /// carry a quarter of the host capacity — the classic many-to-one
    /// stress for shared-buffer schemes.
    pub oversubscription: f64,
    /// One-way propagation per link.
    pub link_prop_ps: Ps,
    /// Shared buffer per group of 8 ports.
    pub buffer_per_8ports_bytes: u64,
    /// Service classes per port.
    pub classes: usize,
    /// Buffer management.
    pub bm: BmSpec,
    /// Port scheduler.
    pub sched: SchedKind,
    /// Simulation parameters.
    pub sim: SimConfig,
}

impl ThreeTierCfg {
    /// Total host count.
    pub fn n_hosts(&self) -> usize {
        self.pods * self.access_per_pod * self.hosts_per_access
    }

    /// Total switch count.
    pub fn n_switches(&self) -> usize {
        self.pods * (self.access_per_pod + self.aggs_per_pod) + self.cores
    }

    /// Rate of each access→aggregation uplink, derived from the
    /// oversubscription ratio: the `aggs_per_pod` uplinks together carry
    /// `hosts_per_access · host_rate / oversubscription`.
    pub fn uplink_rate_bps(&self) -> u64 {
        assert!(
            self.oversubscription >= 1.0,
            "oversubscription must be ≥ 1 (got {})",
            self.oversubscription
        );
        let down = self.hosts_per_access as f64 * self.host_rate_bps as f64;
        (down / (self.aggs_per_pod as f64 * self.oversubscription)).round() as u64
    }
}

/// Builds the 3-tier world.
///
/// Hosts are numbered access-major; switch ids are access switches first
/// (pod-major), then aggregations (pod-major), then cores. Every access
/// switch uplinks to all aggregations of its pod (ECMP), every
/// aggregation uplinks to all cores (ECMP), and cores reach a pod
/// through any of its aggregations (ECMP) — so inter-pod traffic really
/// traverses three tiers.
pub fn three_tier(c: ThreeTierCfg) -> World {
    assert!(c.pods >= 2, "need at least two pods");
    assert!(
        c.access_per_pod >= 1 && c.aggs_per_pod >= 1 && c.cores >= 1,
        "need at least one switch per tier"
    );
    assert!(c.hosts_per_access >= 1, "need hosts");
    let hpa = c.hosts_per_access;
    let hosts_per_pod = c.access_per_pod * hpa;
    let n_hosts = c.n_hosts();
    let n_access = c.pods * c.access_per_pod;
    let n_aggs = c.pods * c.aggs_per_pod;
    let uplink_bps = c.uplink_rate_bps().max(1);
    let sh = shared(&c.bm, c.sched, c.buffer_per_8ports_bytes, c.classes, &c.sim);

    let hosts: Vec<Host> = (0..n_hosts)
        .map(|h| {
            Host::new(
                h,
                HostLink {
                    to_switch: h / hpa,
                    rate_bps: c.host_rate_bps,
                    prop_ps: c.link_prop_ps,
                },
            )
        })
        .collect();

    let mut switches = Vec::with_capacity(c.n_switches());
    // Access: ports 0..hpa down to hosts, then one uplink per pod agg.
    for acc in 0..n_access {
        let pod = acc / c.access_per_pod;
        let mut ports = Vec::new();
        let mut rates = Vec::new();
        for local in 0..hpa {
            ports.push(port(
                NodeId::host(acc * hpa + local),
                c.host_rate_bps,
                c.link_prop_ps,
                c.classes,
                c.sched,
            ));
            rates.push(c.host_rate_bps);
        }
        for a in 0..c.aggs_per_pod {
            ports.push(port(
                NodeId::switch(n_access + pod * c.aggs_per_pod + a),
                uplink_bps,
                c.link_prop_ps,
                c.classes,
                c.sched,
            ));
            rates.push(uplink_bps);
        }
        let up: Vec<u16> = (hpa..hpa + c.aggs_per_pod).map(|p| p as u16).collect();
        let routing = RoutingTable::new(
            (0..n_hosts)
                .map(|dst| {
                    if dst / hpa == acc {
                        vec![(dst % hpa) as u16]
                    } else {
                        up.clone()
                    }
                })
                .collect(),
        );
        switches.push(assemble_switch(acc, ports, rates, routing, &sh));
    }
    // Aggregation: ports 0..access_per_pod down to the pod's access
    // switches, then one uplink per core.
    for agg in 0..n_aggs {
        let pod = agg / c.aggs_per_pod;
        let mut ports = Vec::new();
        let mut rates = Vec::new();
        for a in 0..c.access_per_pod {
            ports.push(port(
                NodeId::switch(pod * c.access_per_pod + a),
                uplink_bps,
                c.link_prop_ps,
                c.classes,
                c.sched,
            ));
            rates.push(uplink_bps);
        }
        for core in 0..c.cores {
            ports.push(port(
                NodeId::switch(n_access + n_aggs + core),
                c.core_rate_bps,
                c.link_prop_ps,
                c.classes,
                c.sched,
            ));
            rates.push(c.core_rate_bps);
        }
        let up: Vec<u16> = (c.access_per_pod..c.access_per_pod + c.cores)
            .map(|p| p as u16)
            .collect();
        let routing = RoutingTable::new(
            (0..n_hosts)
                .map(|dst| {
                    if dst / hosts_per_pod == pod {
                        vec![((dst / hpa) % c.access_per_pod) as u16]
                    } else {
                        up.clone()
                    }
                })
                .collect(),
        );
        switches.push(assemble_switch(n_access + agg, ports, rates, routing, &sh));
    }
    // Core: one port per aggregation switch (agg-major); a pod is
    // reachable through any of its aggregations.
    for core in 0..c.cores {
        let mut ports = Vec::new();
        let mut rates = Vec::new();
        for agg in 0..n_aggs {
            ports.push(port(
                NodeId::switch(n_access + agg),
                c.core_rate_bps,
                c.link_prop_ps,
                c.classes,
                c.sched,
            ));
            rates.push(c.core_rate_bps);
        }
        let routing = RoutingTable::new(
            (0..n_hosts)
                .map(|dst| {
                    let pod = dst / hosts_per_pod;
                    (pod * c.aggs_per_pod..(pod + 1) * c.aggs_per_pod)
                        .map(|p| p as u16)
                        .collect()
                })
                .collect(),
        );
        switches.push(assemble_switch(
            n_access + n_aggs + core,
            ports,
            rates,
            routing,
            &sh,
        ));
    }
    let mut w = World::new(c.sim.clone(), hosts, switches);
    for sw in &mut w.switches {
        sw.tier = if sw.id < n_access {
            0
        } else if sw.id < n_access + n_aggs {
            1
        } else {
            2
        };
    }
    // Domains: pod p owns its hosts, access and aggregation switches;
    // each core switch is its own domain.
    let host_domain = (0..n_hosts).map(|h| (h / hosts_per_pod) as u32).collect();
    let switch_domain = (0..w.switches.len())
        .map(|s| {
            if s < n_access {
                (s / c.access_per_pod) as u32
            } else if s < n_access + n_aggs {
                ((s - n_access) / c.aggs_per_pod) as u32
            } else {
                (c.pods + (s - n_access - n_aggs)) as u32
            }
        })
        .collect();
    w.domains = Some(DomainMap::new(
        host_domain,
        switch_domain,
        &w.hosts,
        &w.switches,
    ));
    w
}

/// The switch-assembly parameters every fabric builder shares: buffer
/// management, scheduling, Tomahawk-style per-8-port buffer partitioning
/// and class count.
struct SwitchShared<'a> {
    bm: &'a BmSpec,
    sched: SchedKind,
    buffer_per_8ports_bytes: u64,
    classes: usize,
    sim: &'a SimConfig,
}

fn shared<'a>(
    bm: &'a BmSpec,
    sched: SchedKind,
    buffer_per_8ports_bytes: u64,
    classes: usize,
    sim: &'a SimConfig,
) -> SwitchShared<'a> {
    SwitchShared {
        bm,
        sched,
        buffer_per_8ports_bytes,
        classes,
        sim,
    }
}

fn assemble_switch(
    id: usize,
    ports: Vec<SwitchPort>,
    rates: Vec<u64>,
    routing: RoutingTable,
    c: &SwitchShared<'_>,
) -> Switch {
    let n = ports.len();
    let mut partitions = Vec::new();
    let mut port_partition = vec![0; n];
    let mut port_local = vec![0; n];
    let all_ports: Vec<usize> = (0..n).collect();
    for (pi, chunk) in all_ports.chunks(8).enumerate() {
        for (li, &p) in chunk.iter().enumerate() {
            port_partition[p] = pi;
            port_local[p] = li;
        }
        partitions.push(build_partition(
            c.bm,
            c.sched,
            c.buffer_per_8ports_bytes * chunk.len() as u64 / 8,
            chunk,
            &rates,
            c.classes,
            c.sim,
        ));
    }
    let total_rate: u64 = rates.iter().sum();
    Switch {
        id,
        tier: 0,
        ports,
        partitions,
        port_partition,
        port_local,
        classes: c.classes,
        routing,
        disabled_ports: vec![false; n],
        n_disabled: 0,
        draining: false,
        xp: None,
        write_rate: RateEstimator::new(10_000, 0.0),
        read_rate: RateEstimator::new(10_000, 0.0),
        total_membw_bps: 2.0 * total_rate as f64,
    }
}

/// Builds one switch port with a link to `to` at `rate_bps`.
fn port(to: NodeId, rate_bps: u64, prop_ps: Ps, classes: usize, sched: SchedKind) -> SwitchPort {
    SwitchPort {
        link: Link {
            to,
            rate_bps,
            prop_ps,
        },
        queues: (0..classes).map(|_| VecDeque::new()).collect(),
        sched: sched.build(classes),
        tx_busy: false,
    }
}

fn build_partition(
    bm: &BmSpec,
    sched: SchedKind,
    buffer_bytes: u64,
    ports: &[usize],
    rates: &[u64],
    classes: usize,
    sim: &SimConfig,
) -> BufferPartition {
    let nq = ports.len() * classes;
    let mut qc = QueueConfig::uniform(nq, 1, 1.0);
    for (li, &p) in ports.iter().enumerate() {
        for class in 0..classes {
            let q = li * classes + class;
            qc.alpha[q] = bm.alpha_per_class[class];
            qc.port_rate_bps[q] = rates[p];
            qc.priority[q] = sched.abm_priority(class);
        }
    }
    let reactive = matches!(bm.kind, BmKind::Occamy | BmKind::OccamyLongest);
    // Token generation at the partition's aggregate forwarding capacity,
    // in cells/s (paper §5.3).
    let agg_rate: u64 = ports.iter().map(|&p| rates[p]).sum();
    let cells_per_sec = agg_rate as f64 / 8.0 / sim.cell_bytes as f64 * sim.expel_rate_factor;
    BufferPartition {
        state: occamy_core::BufferState::new(buffer_bytes, nq),
        bm: bm.kind.build_tuned(qc, bm.tuning),
        tb: TokenBucket::new(cells_per_sec, sim.expel_bucket_cells),
        reactive,
        expel_armed: false,
        ports: ports.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm() -> BmSpec {
        BmSpec::uniform(BmKind::Dt, 1.0)
    }

    #[test]
    fn single_switch_shape() {
        let w = single_switch(SingleSwitchCfg {
            host_rates_bps: vec![10_000_000_000; 4],
            prop_ps: 1_000,
            buffer_bytes: 400_000,
            classes: 2,
            bm: BmSpec::per_class(BmKind::Dt, vec![8.0, 1.0]),
            sched: SchedKind::StrictPriority,
            sim: SimConfig::default(),
        });
        assert_eq!(w.hosts.len(), 4);
        assert_eq!(w.switches.len(), 1);
        let sw = &w.switches[0];
        assert_eq!(sw.ports.len(), 4);
        assert_eq!(sw.partitions.len(), 1);
        assert_eq!(sw.partitions[0].state.num_queues(), 8);
        assert_eq!(sw.partitions[0].state.capacity(), 400_000);
        // Port 2, class 1 maps to queue 5 and back.
        assert_eq!(sw.queue_index(2, 1), 5);
        assert_eq!(sw.queue_location(0, 5), (2, 1));
    }

    #[test]
    fn leaf_spine_paper_shape() {
        let w = leaf_spine(LeafSpineCfg::paper(bm(), SimConfig::large_scale()));
        assert_eq!(w.hosts.len(), 128);
        assert_eq!(w.switches.len(), 16);
        // Leaf: 16 down + 8 up = 24 ports → 3 partitions of 8 → 12 MB.
        let leaf = &w.switches[0];
        assert_eq!(leaf.ports.len(), 24);
        assert_eq!(leaf.partitions.len(), 3);
        let leaf_buf: u64 = leaf.partitions.iter().map(|p| p.state.capacity()).sum();
        assert_eq!(leaf_buf, 12_000_000);
        // Spine: 8 ports → 1 partition → 8 MB per switch? No: 8 ports →
        // one 4 MB partition (4 MB per 8 ports), paper says spines have
        // 8 MB total because they count 16 ports per spine; our spines
        // have `leaves` = 8 ports, so 4 MB.
        let spine = &w.switches[8];
        assert_eq!(spine.ports.len(), 8);
        assert_eq!(spine.partitions.len(), 1);
        assert_eq!(spine.partitions[0].state.capacity(), 4_000_000);
    }

    #[test]
    fn leaf_routing_separates_local_and_remote() {
        let w = leaf_spine(LeafSpineCfg::paper(bm(), SimConfig::large_scale()));
        let leaf0 = &w.switches[0];
        // Local host 3: single down port.
        assert_eq!(leaf0.routing.candidates(3), &[3]);
        // Remote host 17 (leaf 1): ECMP across the 8 up-links.
        assert_eq!(leaf0.routing.candidates(17).len(), 8);
        // Spine 0 routes host 17 down to leaf 1.
        let spine0 = &w.switches[8];
        assert_eq!(spine0.routing.candidates(17), &[1]);
    }

    fn tiny_fat_tree(k: usize) -> FatTreeCfg {
        FatTreeCfg {
            k,
            host_rate_bps: 25_000_000_000,
            fabric_rate_bps: 25_000_000_000,
            link_prop_ps: 10 * crate::time::US,
            buffer_per_8ports_bytes: 1_000_000,
            classes: 1,
            bm: bm(),
            sched: SchedKind::Fifo,
            sim: SimConfig::large_scale(),
        }
    }

    fn tiny_three_tier(oversub: f64) -> ThreeTierCfg {
        ThreeTierCfg {
            pods: 2,
            access_per_pod: 2,
            aggs_per_pod: 2,
            cores: 2,
            hosts_per_access: 4,
            host_rate_bps: 25_000_000_000,
            core_rate_bps: 25_000_000_000,
            oversubscription: oversub,
            link_prop_ps: 10 * crate::time::US,
            buffer_per_8ports_bytes: 1_000_000,
            classes: 1,
            bm: bm(),
            sched: SchedKind::Fifo,
            sim: SimConfig::large_scale(),
        }
    }

    #[test]
    fn fat_tree_k4_shape() {
        let cfg = tiny_fat_tree(4);
        assert_eq!(cfg.n_hosts(), 16);
        assert_eq!(cfg.n_switches(), 20);
        let w = fat_tree(cfg);
        assert_eq!(w.hosts.len(), 16);
        assert_eq!(w.switches.len(), 20);
        // Every switch in a k=4 fat-tree has exactly k = 4 ports.
        for sw in &w.switches {
            assert_eq!(sw.ports.len(), 4, "switch {}", sw.id);
        }
        // Host 0 hangs off edge 0; edge 0's up-links go to aggs 8 and 9.
        assert_eq!(w.hosts[0].link.to_switch, 0);
        let edge0 = &w.switches[0];
        assert_eq!(edge0.ports[2].link.to, NodeId::switch(8));
        assert_eq!(edge0.ports[3].link.to, NodeId::switch(9));
        // Local host: single down port; remote: ECMP across both aggs.
        assert_eq!(edge0.routing.candidates(1), &[1]);
        assert_eq!(edge0.routing.candidates(15), &[2, 3]);
        // Agg 8 (pod 0, group 0) reaches pod-local host 3 via edge 1 and
        // remote hosts via its two core up-links.
        let agg8 = &w.switches[8];
        assert_eq!(agg8.routing.candidates(3), &[1]);
        assert_eq!(agg8.routing.candidates(4), &[2, 3]);
        // Core 16 (group 0) reaches pod 3 through that pod's group-0 agg.
        let core16 = &w.switches[16];
        assert_eq!(core16.ports[3].link.to, NodeId::switch(8 + 3 * 2));
        assert_eq!(core16.routing.candidates(12), &[3]);
    }

    #[test]
    fn three_tier_shape_and_oversubscription() {
        let cfg = tiny_three_tier(4.0);
        assert_eq!(cfg.n_hosts(), 16);
        assert_eq!(cfg.n_switches(), 10);
        // 4 hosts × 25 G down, ÷ (2 uplinks × 4 oversub) = 12.5 G each.
        assert_eq!(cfg.uplink_rate_bps(), 12_500_000_000);
        let w = three_tier(cfg);
        assert_eq!(w.hosts.len(), 16);
        assert_eq!(w.switches.len(), 10);
        let acc0 = &w.switches[0];
        assert_eq!(acc0.ports.len(), 6); // 4 hosts + 2 agg up-links
        assert_eq!(acc0.ports[4].link.rate_bps, 12_500_000_000);
        // Local host direct, remote ECMP over both aggs.
        assert_eq!(acc0.routing.candidates(2), &[2]);
        assert_eq!(acc0.routing.candidates(9), &[4, 5]);
        // Agg 4 (pod 0): pod-local host 5 via access 1, inter-pod via
        // both core up-links.
        let agg4 = &w.switches[4];
        assert_eq!(agg4.ports.len(), 4); // 2 access + 2 cores
        assert_eq!(agg4.routing.candidates(5), &[1]);
        assert_eq!(agg4.routing.candidates(8), &[2, 3]);
        // Core 8: pod 1 reachable through either of its aggs.
        let core8 = &w.switches[8];
        assert_eq!(core8.ports.len(), 4); // one per agg
        assert_eq!(core8.routing.candidates(8), &[2, 3]);
    }

    #[test]
    fn non_blocking_three_tier_uplinks_carry_full_rate() {
        let cfg = tiny_three_tier(1.0);
        // 4 hosts × 25 G ÷ 2 uplinks = 50 G per uplink.
        assert_eq!(cfg.uplink_rate_bps(), 50_000_000_000);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_fat_tree_arity_rejected() {
        fat_tree(tiny_fat_tree(3));
    }

    #[test]
    fn occamy_partitions_are_reactive() {
        let w = single_switch(SingleSwitchCfg {
            host_rates_bps: vec![10_000_000_000; 2],
            prop_ps: 1_000,
            buffer_bytes: 100_000,
            classes: 1,
            bm: BmSpec::uniform(BmKind::Occamy, 8.0),
            sched: SchedKind::Fifo,
            sim: SimConfig::default(),
        });
        assert!(w.switches[0].partitions[0].reactive);
        let w2 = single_switch(SingleSwitchCfg {
            host_rates_bps: vec![10_000_000_000; 2],
            prop_ps: 1_000,
            buffer_bytes: 100_000,
            classes: 1,
            bm: BmSpec::uniform(BmKind::Pushout, 1.0),
            sched: SchedKind::Fifo,
            sim: SimConfig::default(),
        });
        assert!(
            !w2.switches[0].partitions[0].reactive,
            "Pushout evicts synchronously, not via the reactive process"
        );
    }
}
