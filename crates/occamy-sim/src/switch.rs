//! The shared-memory switch: ports, class queues, buffer partitions.

use crate::crosspoint::Crosspoint;
use crate::event::NodeId;
use crate::packet::Packet;
use crate::routing::RoutingTable;
use crate::scheduler::Scheduler;
use crate::time::Ps;
use occamy_core::{AnyBm, BufferState, RateEstimator, TokenBucket};
use std::collections::VecDeque;

/// A unidirectional link out of a switch port.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// Peer node.
    pub to: NodeId,
    /// Rate in bits/s.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_ps: Ps,
}

/// One egress port: a link, per-class queues and a scheduler.
#[derive(Debug)]
pub struct SwitchPort {
    /// Outgoing link.
    pub link: Link,
    /// Per-class packet queues (the PD linked lists of the hardware).
    pub queues: Vec<VecDeque<Packet>>,
    /// Class scheduler.
    pub sched: Scheduler,
    /// Whether the port is mid-serialization.
    pub tx_busy: bool,
}

/// A shared-buffer partition: the unit over which one BM instance runs.
///
/// Tomahawk-style chips partition the buffer among port groups (the
/// paper's §6.4 models 4 MB per 8 ports); each partition owns its
/// occupancy state, BM instance and expulsion token bucket.
#[derive(Debug)]
pub struct BufferPartition {
    /// Occupancy accounting (bytes).
    pub state: BufferState,
    /// The buffer-management scheme.
    pub bm: AnyBm,
    /// Redundant-memory-bandwidth budget for expulsion (paper §5.3).
    pub tb: TokenBucket,
    /// Whether the BM runs a reactive expulsion process (Occamy variants).
    pub reactive: bool,
    /// An `ExpelRetry` event is pending for this partition.
    pub expel_armed: bool,
    /// Global port indices belonging to this partition, in queue order.
    pub ports: Vec<usize>,
}

/// An output-queued shared-memory switch.
#[derive(Debug)]
pub struct Switch {
    /// Switch index.
    pub id: usize,
    /// Fabric tier (0 = edge/leaf/access, 1 = aggregation/spine,
    /// 2 = core). Purely descriptive — set by the topology builders and
    /// used by telemetry to group queue-occupancy gauges per tier.
    pub tier: u8,
    /// Egress ports.
    pub ports: Vec<SwitchPort>,
    /// Buffer partitions.
    pub partitions: Vec<BufferPartition>,
    /// Partition index of each port.
    pub port_partition: Vec<usize>,
    /// Index of each port *within* its partition.
    pub port_local: Vec<usize>,
    /// Service classes per port.
    pub classes: usize,
    /// Static routing table.
    pub routing: RoutingTable,
    /// Per-port link-down marks (fault injection); indexed by global
    /// port number, consulted by ECMP only when `n_disabled > 0`.
    pub disabled_ports: Vec<bool>,
    /// Number of `true` entries in `disabled_ports` — the fault-free
    /// fast-path guard.
    pub n_disabled: u32,
    /// Whether the switch is mid-drain: arrivals refused, buffer
    /// emptying through the normal dequeue path.
    pub draining: bool,
    /// Crosspoint-queued mode: when present, arrivals and transmits
    /// route through per-(input, output) crosspoint buffers and the
    /// shared-memory partitions above stay empty (see
    /// [`crate::crosspoint`]).
    pub xp: Option<Crosspoint>,
    /// EWMA of bytes written into the buffer (memory write bandwidth).
    pub write_rate: RateEstimator,
    /// EWMA of bytes read out of the cell data memory.
    pub read_rate: RateEstimator,
    /// Total memory bandwidth in bits/s (write path + read path).
    pub total_membw_bps: f64,
}

impl Switch {
    /// Partition-local queue index for `(port, class)`.
    #[inline]
    pub fn queue_index(&self, port: usize, class: usize) -> usize {
        self.port_local[port] * self.classes + class
    }

    /// Inverse of [`Switch::queue_index`]: `(global port, class)` of a
    /// partition-local queue index.
    #[inline]
    pub fn queue_location(&self, partition: usize, qidx: usize) -> (usize, usize) {
        let port = self.partitions[partition].ports[qidx / self.classes];
        (port, qidx % self.classes)
    }

    /// Instantaneous memory-bandwidth utilization estimate at `now_ns`
    /// (paper Fig. 7b: consumed / overall).
    pub fn membw_util(&self, now_ns: u64) -> f64 {
        ((self.write_rate.rate_bps(now_ns) + self.read_rate.rate_bps(now_ns))
            / self.total_membw_bps)
            .min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occamy_core::{BmKind, QueueConfig};

    fn tiny_switch(classes: usize, ports_per_partition: usize, n_ports: usize) -> Switch {
        let mut partitions = Vec::new();
        let mut port_partition = vec![0; n_ports];
        let mut port_local = vec![0; n_ports];
        for (pi, chunk) in (0..n_ports)
            .collect::<Vec<_>>()
            .chunks(ports_per_partition)
            .enumerate()
        {
            for (li, &p) in chunk.iter().enumerate() {
                port_partition[p] = pi;
                port_local[p] = li;
            }
            let nq = chunk.len() * classes;
            partitions.push(BufferPartition {
                state: BufferState::new(1_000_000, nq),
                bm: BmKind::Dt.build(QueueConfig::uniform(nq, 10_000_000_000, 1.0)),
                tb: TokenBucket::new(1e9, 100.0),
                reactive: false,
                expel_armed: false,
                ports: chunk.to_vec(),
            });
        }
        let ports = (0..n_ports)
            .map(|_| SwitchPort {
                link: Link {
                    to: NodeId::host(0),
                    rate_bps: 10_000_000_000,
                    prop_ps: 1_000,
                },
                queues: (0..classes).map(|_| VecDeque::new()).collect(),
                sched: Scheduler::Fifo,
                tx_busy: false,
            })
            .collect();
        Switch {
            id: 0,
            tier: 0,
            ports,
            partitions,
            port_partition,
            port_local,
            classes,
            routing: RoutingTable::new(vec![vec![0]]),
            disabled_ports: vec![false; n_ports],
            n_disabled: 0,
            draining: false,
            xp: None,
            write_rate: RateEstimator::new(10_000, 0.0),
            read_rate: RateEstimator::new(10_000, 0.0),
            total_membw_bps: 2.0 * 10e9 * n_ports as f64,
        }
    }

    #[test]
    fn queue_index_roundtrips() {
        let sw = tiny_switch(2, 4, 8);
        for port in 0..8 {
            for class in 0..2 {
                let pa = sw.port_partition[port];
                let q = sw.queue_index(port, class);
                assert_eq!(sw.queue_location(pa, q), (port, class));
            }
        }
    }

    #[test]
    fn partitions_chunk_ports() {
        let sw = tiny_switch(2, 4, 8);
        assert_eq!(sw.partitions.len(), 2);
        assert_eq!(sw.partitions[0].ports, vec![0, 1, 2, 3]);
        assert_eq!(sw.partitions[1].ports, vec![4, 5, 6, 7]);
        assert_eq!(sw.port_partition[5], 1);
        assert_eq!(sw.port_local[5], 1);
    }

    #[test]
    fn membw_util_tracks_activity() {
        let mut sw = tiny_switch(1, 8, 8);
        assert_eq!(sw.membw_util(0), 0.0);
        // Feed the write estimator at ~80 Gbps for a while.
        let mut now = 0u64;
        for _ in 0..10_000 {
            now += 100; // 100 ns
            sw.write_rate.record(1_000, now); // 1000 B / 100 ns = 80 Gbps
        }
        let util = sw.membw_util(now);
        // 80 Gbps of 160 Gbps total = 0.5.
        assert!((util - 0.5).abs() < 0.05, "util {util}");
    }
}
