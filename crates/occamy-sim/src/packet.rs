//! The simulated packet.

use crate::time::Ps;

/// Flow identifier: index into the world's flow table.
pub type FlowId = u32;

/// TCP/IP header overhead charged per packet, in bytes.
pub const HDR_BYTES: u64 = 40;

/// Kind of packet payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// TCP data segment.
    Data,
    /// TCP cumulative ACK (possibly with ECN echo).
    Ack,
    /// Raw constant-bit-rate datagram (Pktgen-style, no transport).
    Raw,
}

/// A packet in flight or queued in a switch buffer.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Source host index.
    pub src: u32,
    /// Destination host index.
    pub dst: u32,
    /// Payload byte offset of this segment (data) — unused for ACKs.
    pub seq: u64,
    /// Payload length in bytes (0 for ACKs).
    pub len: u32,
    /// Cumulative ACK sequence (ACKs only).
    pub ack_seq: u64,
    /// Packet kind.
    pub kind: PacketKind,
    /// Switch-set ECN Congestion Experienced mark.
    pub ce: bool,
    /// ACK echoes the CE mark of the data packet it acknowledges.
    pub ece: bool,
    /// Scheduling class / priority at switch ports (0 = highest).
    pub prio: u8,
    /// Sender timestamp, echoed in ACKs for RTT estimation.
    pub ts: Ps,
    /// Encoded previous-hop node (see `crosspoint::encode_hop`),
    /// stamped at every transmit. Only crosspoint-queued switches read
    /// it — it is how an arrival finds its input port.
    pub last_hop: u32,
}

impl Packet {
    /// Bytes this packet occupies on the wire and in switch buffers.
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        self.len as u64 + HDR_BYTES
    }

    /// Creates a data segment.
    #[allow(clippy::too_many_arguments)]
    pub fn data(flow: FlowId, src: u32, dst: u32, seq: u64, len: u32, prio: u8, ts: Ps) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq,
            len,
            ack_seq: 0,
            kind: PacketKind::Data,
            ce: false,
            ece: false,
            prio,
            ts,
            last_hop: 0,
        }
    }

    /// Creates an ACK for `flow`, flowing `src → dst` (receiver → sender).
    pub fn ack(
        flow: FlowId,
        src: u32,
        dst: u32,
        ack_seq: u64,
        ece: bool,
        prio: u8,
        ts: Ps,
    ) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq: 0,
            len: 0,
            ack_seq,
            kind: PacketKind::Ack,
            ce: false,
            ece,
            prio,
            ts,
            last_hop: 0,
        }
    }

    /// Creates a raw CBR datagram.
    pub fn raw(flow: FlowId, src: u32, dst: u32, len: u32, prio: u8, ts: Ps) -> Self {
        Packet {
            flow,
            src,
            dst,
            seq: 0,
            len,
            ack_seq: 0,
            kind: PacketKind::Raw,
            ce: false,
            ece: false,
            prio,
            ts,
            last_hop: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_include_header() {
        let d = Packet::data(1, 0, 1, 0, 1460, 0, 0);
        assert_eq!(d.wire_bytes(), 1500);
        let a = Packet::ack(1, 1, 0, 1460, false, 0, 0);
        assert_eq!(a.wire_bytes(), 40);
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Packet::data(0, 0, 1, 0, 1, 0, 0).kind, PacketKind::Data);
        assert_eq!(Packet::ack(0, 1, 0, 1, false, 0, 0).kind, PacketKind::Ack);
        assert_eq!(Packet::raw(0, 0, 1, 100, 2, 5).kind, PacketKind::Raw);
    }

    #[test]
    fn ack_echoes_ece() {
        let a = Packet::ack(3, 1, 0, 99, true, 1, 42);
        assert!(a.ece);
        assert!(!a.ce);
        assert_eq!(a.ack_seq, 99);
        assert_eq!(a.ts, 42);
    }
}
