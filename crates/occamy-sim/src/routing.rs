//! Static routing tables with ECMP (paper §6.4: "we employ ECMP for
//! multi-path load balancing").

use crate::packet::FlowId;

/// Per-switch routing: for each destination host, the candidate egress
/// ports (more than one ⇒ ECMP).
#[derive(Debug, Clone)]
pub struct RoutingTable {
    /// `candidates[dst_host]` = egress ports toward that host.
    candidates: Vec<Vec<u16>>,
}

impl RoutingTable {
    /// Builds a table from per-destination candidate port lists.
    pub fn new(candidates: Vec<Vec<u16>>) -> Self {
        RoutingTable { candidates }
    }

    /// Number of destinations covered.
    pub fn num_dsts(&self) -> usize {
        self.candidates.len()
    }

    /// Egress port toward `dst` for `flow`.
    ///
    /// ECMP hashes the flow id so all packets of a flow take one path
    /// (no intra-flow reordering), while different flows spread across
    /// the candidate set.
    ///
    /// # Panics
    ///
    /// Panics if `dst` has no route.
    pub fn port_for(&self, dst: usize, flow: FlowId) -> usize {
        let set = &self.candidates[dst];
        assert!(!set.is_empty(), "no route to host {dst}");
        if set.len() == 1 {
            return set[0] as usize;
        }
        set[(ecmp_hash(flow) % set.len() as u64) as usize] as usize
    }

    /// Egress port toward `dst` for `flow`, skipping ports marked in
    /// `disabled` (indexed by global port number). Returns `None` when
    /// every candidate is disabled — e.g. an edge down-link that is the
    /// only path to the host.
    ///
    /// Hashes over the *enabled-candidate count*, so with no port
    /// disabled it selects exactly like [`RoutingTable::port_for`]. The
    /// caller keeps the fault-free fast path by only calling this when
    /// the switch has at least one disabled port.
    pub fn port_for_enabled(&self, dst: usize, flow: FlowId, disabled: &[bool]) -> Option<usize> {
        let set = &self.candidates[dst];
        assert!(!set.is_empty(), "no route to host {dst}");
        let n = set.iter().filter(|&&p| !disabled[p as usize]).count();
        if n == 0 {
            return None;
        }
        let k = (ecmp_hash(flow) % n as u64) as usize;
        set.iter()
            .filter(|&&p| !disabled[p as usize])
            .nth(k)
            .map(|&p| p as usize)
    }

    /// The raw candidate set (used by tests and diagnostics).
    pub fn candidates(&self, dst: usize) -> &[u16] {
        &self.candidates[dst]
    }
}

/// SplitMix64 — a cheap, well-mixed hash for ECMP path selection.
#[inline]
pub fn ecmp_hash(flow: FlowId) -> u64 {
    let mut z = flow as u64 ^ 0x9E37_79B9_7F4A_7C15;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_candidate_is_deterministic() {
        let rt = RoutingTable::new(vec![vec![3]]);
        for f in 0..10 {
            assert_eq!(rt.port_for(0, f), 3);
        }
    }

    #[test]
    fn flow_sticks_to_one_path() {
        let rt = RoutingTable::new(vec![vec![0, 1, 2, 3]]);
        let p = rt.port_for(0, 77);
        for _ in 0..5 {
            assert_eq!(rt.port_for(0, 77), p);
        }
    }

    #[test]
    fn ecmp_spreads_flows() {
        let rt = RoutingTable::new(vec![vec![0, 1, 2, 3, 4, 5, 6, 7]]);
        let mut counts = [0u32; 8];
        for f in 0..8_000u32 {
            counts[rt.port_for(0, f)] += 1;
        }
        // Each port should get roughly 1000 ± 20%.
        for (p, &c) in counts.iter().enumerate() {
            assert!((800..=1_200).contains(&c), "port {p} got {c} of 8000 flows");
        }
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let rt = RoutingTable::new(vec![vec![]]);
        rt.port_for(0, 1);
    }

    #[test]
    fn enabled_selection_matches_port_for_when_nothing_disabled() {
        let rt = RoutingTable::new(vec![vec![0, 1, 2, 3]]);
        let disabled = vec![false; 4];
        for f in 0..100 {
            assert_eq!(
                rt.port_for_enabled(0, f, &disabled),
                Some(rt.port_for(0, f))
            );
        }
    }

    #[test]
    fn disabled_ports_are_excluded() {
        let rt = RoutingTable::new(vec![vec![0, 1, 2, 3]]);
        let mut disabled = vec![false; 4];
        disabled[2] = true;
        for f in 0..1_000 {
            let p = rt.port_for_enabled(0, f, &disabled).unwrap();
            assert_ne!(p, 2);
        }
        // All candidates down ⇒ no route.
        let all = vec![true; 4];
        assert_eq!(rt.port_for_enabled(0, 7, &all), None);
    }

    #[test]
    fn hash_avalanche() {
        // Adjacent flow ids must map to well-separated hashes.
        let h1 = ecmp_hash(1);
        let h2 = ecmp_hash(2);
        assert_ne!(h1 & 0xFFFF, h2 & 0xFFFF);
    }
}
