//! Deterministic fault injection: link flaps, switch drain and host
//! churn as first-class simulation events.
//!
//! A fault schedule is declarative data ([`FaultSchedule`]) whose times
//! are *fractions* of the run's workload window, so the same schedule
//! scales with `--quick`/`--smoke` duration clamps. [`FaultSchedule::apply`]
//! compiles it into [`FaultSpec`] entries on the world's immutable fault
//! table plus `Event::Fault` events registered through the same deferred
//! lane flow starts use — which is what keeps a faulted run byte-identical
//! between the serial engine and the domain-decomposed parallel executor
//! (each fault event is owned by exactly one domain: the switch's for
//! link/drain faults, the host's for churn).
//!
//! Semantics (handled in `engine::fault_fire`):
//!
//! - **`LinkDown`** flushes the packets queued on that switch port
//!   (counted as fault drops, with buffer/membw utilization context like
//!   any other drop sample) and excludes the port from ECMP route
//!   selection until the matching **`LinkUp`**. Packets already on the
//!   wire still deliver — only the hop's queue and future routing are
//!   affected. A packet whose only route is the downed port (an edge
//!   down-link) is dropped and counted.
//! - **`SwitchDrainStart`** stops the switch admitting new packets
//!   (arrivals are dropped and counted) while its ports keep draining
//!   the buffer through the normal `BufferManager` dequeue hooks;
//!   **`SwitchDrainEnd`** restores admission.
//! - **`HostLeave`** marks the host dead: its queued ACKs/CBR packets
//!   are dropped, every flow it sources is killed (transport freeze; see
//!   `FlowHot::kill`) and packets addressed to it are dropped on
//!   arrival. **`HostJoin`** revives it and re-arms its sources
//!   (`FlowHot::resume` + host pump), with transport recovering via the
//!   existing RTO/TLP path.

use crate::time::Ps;

/// One fault event's kind. Indices are validated against the world when
/// the fault is registered ([`crate::World::add_fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Take one switch port's link down (flush + exclude from ECMP).
    LinkDown {
        /// Switch index.
        switch: u32,
        /// Port index on that switch.
        port: u16,
    },
    /// Restore a downed link.
    LinkUp {
        /// Switch index.
        switch: u32,
        /// Port index on that switch.
        port: u16,
    },
    /// Stop the switch admitting packets (buffer keeps draining).
    SwitchDrainStart {
        /// Switch index.
        switch: u32,
    },
    /// Restore admission after a drain.
    SwitchDrainEnd {
        /// Switch index.
        switch: u32,
    },
    /// Host leaves the fabric: kills its flows, drops its queues.
    HostLeave {
        /// Host index.
        host: u32,
    },
    /// Host rejoins: revives it and re-arms its sources.
    HostJoin {
        /// Host index.
        host: u32,
    },
}

/// One scheduled fault: an absolute firing time plus its kind. Stored on
/// the world's immutable fault table; `Event::Fault { fault }` indexes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Absolute firing time.
    pub at: Ps,
    /// What happens.
    pub kind: FaultKind,
}

/// One link flap: the port goes down at `down` and back up at `up`
/// (both fractions of the run's workload window, `0 ≤ down < up ≤ 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFlap {
    /// Switch index.
    pub switch: u32,
    /// Port index on that switch.
    pub port: u16,
    /// Down time as a fraction of the workload window.
    pub down: f64,
    /// Restore time as a fraction of the workload window.
    pub up: f64,
}

/// One switch drain window (fractions of the workload window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Drain {
    /// Switch index.
    pub switch: u32,
    /// Drain start as a fraction of the workload window.
    pub start: f64,
    /// Drain end as a fraction of the workload window.
    pub end: f64,
}

/// One host churn cycle: leave at `leave`, rejoin at `join`
/// (fractions of the workload window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostChurn {
    /// Host index.
    pub host: u32,
    /// Leave time as a fraction of the workload window.
    pub leave: f64,
    /// Rejoin time as a fraction of the workload window.
    pub join: f64,
}

/// A declarative fault schedule with duration-relative times. Scenario
/// builders hold one of these (default: empty = pristine fabric) and
/// call [`FaultSchedule::apply`] after injecting the workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// Link flaps.
    pub link_flaps: Vec<LinkFlap>,
    /// Switch drain windows.
    pub drains: Vec<Drain>,
    /// Host churn cycles.
    pub host_churns: Vec<HostChurn>,
}

impl FaultSchedule {
    /// Whether the schedule contains no faults.
    pub fn is_empty(&self) -> bool {
        self.link_flaps.is_empty() && self.drains.is_empty() && self.host_churns.is_empty()
    }

    /// Total fault events this schedule compiles into (two per entry).
    pub fn n_events(&self) -> usize {
        2 * (self.link_flaps.len() + self.drains.len() + self.host_churns.len())
    }

    /// Materializes the schedule onto `world`, resolving each fraction
    /// against `duration_ps` (the workload window). Registration order
    /// is fixed — flaps (down, up), drains (start, end), churns (leave,
    /// join) — so equal-time faults tie-break deterministically by
    /// insertion sequence in both the serial and parallel engines.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is outside `0..=1`, an interval is not
    /// strictly ordered, or an index is outside the world (via
    /// [`crate::World::add_fault`]).
    pub fn apply(&self, world: &mut crate::World, duration_ps: Ps) {
        let at = |frac: f64, what: &str| -> Ps {
            assert!(
                (0.0..=1.0).contains(&frac),
                "fault {what} fraction {frac} outside 0..=1"
            );
            (frac * duration_ps as f64).round() as Ps
        };
        for f in &self.link_flaps {
            assert!(f.down < f.up, "link flap must go down before up");
            world.add_fault(
                at(f.down, "link down"),
                FaultKind::LinkDown {
                    switch: f.switch,
                    port: f.port,
                },
            );
            world.add_fault(
                at(f.up, "link up"),
                FaultKind::LinkUp {
                    switch: f.switch,
                    port: f.port,
                },
            );
        }
        for d in &self.drains {
            assert!(d.start < d.end, "drain must start before it ends");
            world.add_fault(
                at(d.start, "drain start"),
                FaultKind::SwitchDrainStart { switch: d.switch },
            );
            world.add_fault(
                at(d.end, "drain end"),
                FaultKind::SwitchDrainEnd { switch: d.switch },
            );
        }
        for h in &self.host_churns {
            assert!(h.leave < h.join, "host must leave before it rejoins");
            world.add_fault(
                at(h.leave, "host leave"),
                FaultKind::HostLeave { host: h.host },
            );
            world.add_fault(
                at(h.join, "host join"),
                FaultKind::HostJoin { host: h.host },
            );
        }
    }
}

/// Aggregated transport-recovery outcome of a finished run (built by
/// [`crate::World::resilience`]): the per-flow counters summed, the
/// fault counters copied from [`crate::Metrics`], and the recovery time
/// of every interrupted-but-completed flow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceCounters {
    /// Retransmitted segments across all flows.
    pub retransmissions: u64,
    /// Full RTO firings across all flows.
    pub rto_fires: u64,
    /// Fault events executed.
    pub faults_fired: u64,
    /// Packets dropped because of faults (flushes, drains, dead hosts,
    /// routes with no enabled port).
    pub fault_drops: u64,
    /// Flows still killed (source host never rejoined) at run end.
    pub flows_killed: u64,
    /// Flows that were interrupted (full RTO or kill) and still
    /// completed.
    pub flows_recovered: u64,
    /// Per-flow recovery times (`end − first interrupt`) of the
    /// recovered flows, in flow-id order.
    pub recovery_times_ps: Vec<Ps>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_counts_and_emptiness() {
        let mut s = FaultSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.n_events(), 0);
        s.link_flaps.push(LinkFlap {
            switch: 0,
            port: 1,
            down: 0.2,
            up: 0.5,
        });
        s.host_churns.push(HostChurn {
            host: 3,
            leave: 0.1,
            join: 0.9,
        });
        assert!(!s.is_empty());
        assert_eq!(s.n_events(), 4);
    }
}
