//! A hierarchical timer wheel — the event queue's scheduling core.
//!
//! A discrete-event simulator pushes *near-future* events: a
//! serialization completion a few hundred ns out, an arrival one link
//! propagation away, a retransmission timer milliseconds ahead. On a
//! min-heap a near-minimum key is the worst case — every push sifts to
//! near the root, every pop sifts the full depth, and transport-heavy
//! runs keeping tens of thousands of pending RTO timers make that depth
//! O(flows). The wheel turns both operations into O(1) amortized
//! bucketing: an entry lands in a slot indexed by its expiry tick,
//! levels cover geometrically growing horizons, and entries cascade
//! toward level 0 as the cursor advances. The main loop sees the wheel
//! through a single next-deadline probe ([`TimerWheel::peek`]).
//!
//! **Ordering is exact, not approximate.** Every entry keeps its full
//! `(time, seq)` queue key: slots only bucket entries, and whichever
//! bucket the cursor drains next is sorted before it is served. Merged
//! against the deferred lane by key, runs remain bit-for-bit identical
//! to a heap-backed queue — pinned by the fire-order proptest in
//! `tests/timer_wheel.rs` and the golden/shard byte-identity gates.
//!
//! Geometry: level-0 slots are 2¹² ps ≈ 4.1 ns wide (below one packet
//! serialization time at 100 G, so packet-event buckets hold a few
//! entries), each of the 6 levels has 64 slots, and the wheel spans
//! 2⁴⁸ ps ≈ 281 s from the cursor — beyond the 60 s RTO cap even with
//! backoff. Entries past the span (arbitrary far-future events are
//! legal) fall into a lazily sorted overflow lane that is popped
//! directly, like the deferred lane.

use crate::event::Event;
use crate::time::Ps;

/// Queue ordering key: `(time, global insertion sequence)` — the same
/// key the event heap uses, so cross-lane ties break identically.
pub(crate) type Key = (Ps, u64);

/// log2 of the level-0 slot width in picoseconds (≈ 4.1 ns).
const GRAN_BITS: u32 = 12;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Slot-index mask.
const MASK: u64 = SLOTS as u64 - 1;
/// Wheel levels; total span is `2^(GRAN_BITS + LEVELS·SLOT_BITS)` ps.
const LEVELS: usize = 6;

/// Hierarchical timer wheel holding `(key, event)` entries.
///
/// All mutating accessors keep one invariant: every entry still sitting
/// in a slot expires at a tick strictly greater than `cursor`, and its
/// level is the highest 6-bit tick group in which its tick differs from
/// the cursor's. Entries at or before the cursor live in `ready`
/// (sorted descending, popped from the end).
pub(crate) struct TimerWheel {
    /// `levels[l][slot]` holds entries whose tick differs from the
    /// cursor's first in bit group `l`.
    levels: Vec<Vec<Vec<(Key, Event)>>>,
    /// Absolute level-0 tick the wheel has advanced to.
    cursor: u64,
    /// Entries due at or before the cursor, sorted descending by key.
    ready: Vec<(Key, Event)>,
    /// Entries beyond the wheel span, sorted lazily (descending).
    overflow: Vec<(Key, Event)>,
    overflow_dirty: bool,
    /// Entry count across all slots (excludes `ready` and `overflow`).
    in_slots: usize,
    /// Per-level slot-occupancy bitmaps: bit `j` set ⟺ `levels[l][j]`
    /// is non-empty. Advancing finds the next occupied slot with one
    /// mask-and-`trailing_zeros` per level instead of a 64-slot scan.
    occ: [u64; LEVELS],
    /// Cascade scratch buffer (swapped with slots so buffer capacities
    /// circulate instead of being reallocated).
    scratch: Vec<(Key, Event)>,
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            cursor: 0,
            ready: Vec::new(),
            overflow: Vec::new(),
            overflow_dirty: false,
            in_slots: 0,
            occ: [0; LEVELS],
            scratch: Vec::new(),
        }
    }
}

impl TimerWheel {
    /// Pending timer count.
    pub fn len(&self) -> usize {
        self.ready.len() + self.in_slots + self.overflow.len()
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an entry. `key.0` may be at any time, including before
    /// previously drained slots (the entry then joins `ready` directly).
    pub fn arm(&mut self, key: Key, event: Event) {
        let tick = key.0 >> GRAN_BITS;
        if tick <= self.cursor {
            // Due at or before the wheel position: merge into the ready
            // buffer at its sorted (descending) position.
            let pos = self.ready.partition_point(|e| e.0 > key);
            self.ready.insert(pos, (key, event));
            return;
        }
        let diff = tick ^ self.cursor;
        if diff >> GRAN_DIFF_LIMIT != 0 {
            self.overflow.push((key, event));
            self.overflow_dirty = true;
            return;
        }
        let level = level_of(diff);
        let slot = ((tick >> (SLOT_BITS * level as u32)) & MASK) as usize;
        self.levels[level][slot].push((key, event));
        self.occ[level] |= 1 << slot;
        self.in_slots += 1;
    }

    /// The earliest pending key, advancing the wheel as needed.
    pub fn peek(&mut self) -> Option<Key> {
        let slot_min = self.ready_min();
        let over_min = self.overflow_min();
        match (slot_min, over_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pops the earliest pending entry.
    pub fn pop(&mut self) -> Option<(Key, Event)> {
        let slot_min = self.ready_min();
        let over_min = self.overflow_min();
        match (slot_min, over_min) {
            (None, None) => None,
            (Some(_), None) => self.ready.pop(),
            (None, Some(_)) => self.overflow.pop(),
            (Some(a), Some(b)) if a < b => self.ready.pop(),
            _ => self.overflow.pop(),
        }
    }

    /// Minimum key of the slot/ready side, draining slots into `ready`
    /// as the cursor advances.
    fn ready_min(&mut self) -> Option<Key> {
        loop {
            if let Some(&(k, _)) = self.ready.last() {
                return Some(k);
            }
            if self.in_slots == 0 {
                return None;
            }
            self.advance();
        }
    }

    fn overflow_min(&mut self) -> Option<Key> {
        if self.overflow_dirty {
            self.overflow
                .sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
            self.overflow_dirty = false;
        }
        self.overflow.last().map(|e| e.0)
    }

    /// Moves the cursor to the next occupied slot, cascading it toward
    /// level 0 until a tick group can be drained into `ready`. Requires
    /// `in_slots > 0`.
    ///
    /// Key ordering property of the level assignment: an entry sits at
    /// level `l` because its tick agrees with the cursor on every group
    /// above `l` and first differs in group `l` — so every level-`l`
    /// entry expires strictly before every level-`l+1` entry. The
    /// earliest pending slot is therefore the first occupied slot (from
    /// the cursor's index) of the **lowest** occupied level; no
    /// slot-by-slot stepping through empty regions is ever needed.
    fn advance(&mut self) {
        debug_assert!(self.ready.is_empty() && self.in_slots > 0);
        loop {
            let found = (0..LEVELS).find_map(|l| {
                let idx = (self.cursor >> (SLOT_BITS * l as u32)) & MASK;
                let masked = self.occ[l] & (u64::MAX << idx);
                (masked != 0).then(|| (l, masked.trailing_zeros() as usize))
            });
            let Some((l, j)) = found else {
                // All levels empty yet in_slots > 0 would be a broken
                // invariant; bail out rather than spin.
                debug_assert_eq!(self.in_slots, 0, "timer wheel lost entries");
                return;
            };
            let shift = SLOT_BITS * l as u32;
            // Start of the found slot: groups above `l` keep their
            // current values, groups below `l` reset to zero. The
            // cursor's own slot at any level is empty by construction
            // (same-slot arms go to a lower level, same-tick arms to
            // `ready`), so this never moves the cursor backwards.
            let epoch = self.cursor & !(((1u64 << SLOT_BITS) << shift) - 1);
            self.cursor = self.cursor.max(epoch + ((j as u64) << shift));
            if l == 0 {
                // Recycle the ready buffer's allocation into the slot.
                std::mem::swap(&mut self.ready, &mut self.levels[0][j]);
                self.occ[0] &= !(1 << j);
                self.in_slots -= self.ready.len();
                if self.ready.len() > 1 {
                    self.ready.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
                }
                return;
            }
            // Cascade the slot's entries toward level 0 and rescan.
            // Swapping through the scratch buffer keeps slot capacities
            // circulating instead of reallocating on every cascade.
            std::mem::swap(&mut self.scratch, &mut self.levels[l][j]);
            self.occ[l] &= !(1 << j);
            self.in_slots -= self.scratch.len();
            let mut scratch = std::mem::take(&mut self.scratch);
            for (key, event) in scratch.drain(..) {
                let tick = key.0 >> GRAN_BITS;
                debug_assert!(tick >= self.cursor);
                if tick == self.cursor {
                    // Due exactly at the new cursor position.
                    let pos = self.ready.partition_point(|e| e.0 > key);
                    self.ready.insert(pos, (key, event));
                    continue;
                }
                let lv = level_of(tick ^ self.cursor);
                debug_assert!(lv < l, "cascade must descend");
                let slot = ((tick >> (SLOT_BITS * lv as u32)) & MASK) as usize;
                self.levels[lv][slot].push((key, event));
                self.occ[lv] |= 1 << slot;
                self.in_slots += 1;
            }
            self.scratch = scratch;
            if !self.ready.is_empty() {
                return;
            }
        }
    }
}

/// Highest tick span the wheel covers: diffs with bits at or above this
/// position overflow.
const GRAN_DIFF_LIMIT: u32 = SLOT_BITS * LEVELS as u32;

/// Level of a nonzero tick diff: the highest 6-bit group containing a
/// set bit.
#[inline]
fn level_of(diff: u64) -> usize {
    debug_assert!(diff != 0 && diff >> GRAN_DIFF_LIMIT == 0);
    (63 - diff.leading_zeros()) as usize / SLOT_BITS as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MS, SEC, US};

    fn ev(host: u32) -> Event {
        Event::HostTxFree { host }
    }

    fn drain(w: &mut TimerWheel) -> Vec<Key> {
        std::iter::from_fn(|| w.pop().map(|(k, _)| k)).collect()
    }

    #[test]
    fn pops_in_key_order_across_levels() {
        let mut w = TimerWheel::default();
        // Same-slot, cross-slot, cross-epoch, deep-level and overflow
        // distances all at once.
        let times = [
            3 * US,
            17 * US,
            MS,
            5 * MS,
            80 * MS,
            2 * SEC,
            60 * SEC,
            300 * SEC, // beyond the 281 s span: overflow lane
        ];
        for (i, &t) in times.iter().enumerate() {
            w.arm((t, i as u64), ev(i as u32));
        }
        assert_eq!(w.len(), times.len());
        let keys = drain(&mut w);
        let mut want: Vec<Key> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect();
        want.sort_unstable();
        assert_eq!(keys, want);
        assert!(w.is_empty());
    }

    #[test]
    fn equal_times_pop_in_seq_order() {
        let mut w = TimerWheel::default();
        for seq in [4u64, 1, 3, 0, 2] {
            w.arm((7 * MS, seq), ev(seq as u32));
        }
        let keys = drain(&mut w);
        assert_eq!(keys, (0..5).map(|s| (7 * MS, s)).collect::<Vec<_>>());
    }

    #[test]
    fn arm_behind_cursor_joins_ready_in_order() {
        let mut w = TimerWheel::default();
        w.arm((50 * MS, 0), ev(0));
        // Peeking advances the cursor to the 50 ms slot.
        assert_eq!(w.peek(), Some((50 * MS, 0)));
        // A later arm at an earlier time must still pop first.
        w.arm((10 * MS, 1), ev(1));
        w.arm((50 * MS - 1, 2), ev(2));
        let keys = drain(&mut w);
        assert_eq!(keys, vec![(10 * MS, 1), (50 * MS - 1, 2), (50 * MS, 0)]);
    }

    #[test]
    fn interleaved_arm_and_pop_keeps_order() {
        // A deterministic xorshift mix of arms and pops; every popped
        // key must be ≥ the previous pop and match a model list.
        let mut w = TimerWheel::default();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut seq = 0u64;
        let mut popped: Vec<Key> = Vec::new();
        let mut pending: Vec<Key> = Vec::new();
        let mut now = 0u64;
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Arm 0–2 timers relative to the current virtual time.
            for _ in 0..(x % 3) {
                let delay = (x >> 8) % (3 * SEC);
                let key = (now + delay, seq);
                w.arm(key, ev(0));
                pending.push(key);
                seq += 1;
            }
            if x % 5 < 2 {
                if let Some((k, _)) = w.pop() {
                    now = k.0; // simulated clock follows fires
                    popped.push(k);
                }
            }
        }
        popped.extend(drain(&mut w));
        pending.sort_unstable();
        assert_eq!(popped, pending);
    }

    #[test]
    fn len_tracks_all_lanes() {
        let mut w = TimerWheel::default();
        assert!(w.is_empty());
        w.arm((US, 0), ev(0));
        w.arm((SEC, 1), ev(1));
        w.arm((400 * SEC, 2), ev(2));
        assert_eq!(w.len(), 3);
        w.pop();
        assert_eq!(w.len(), 2);
        drain(&mut w);
        assert!(w.is_empty());
    }
}
