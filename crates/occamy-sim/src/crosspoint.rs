//! The crosspoint-queued (CQ) switch architecture — the single-chip
//! buffered-crossbar rival of the shared-memory output-queued switch
//! (Cao & Panwar; see PAPERS.md).
//!
//! A CQ switch has no shared buffer at all: the crossbar carries a
//! small dedicated buffer at every (input, output) crosspoint, arriving
//! packets tail-drop against *their own* crosspoint only, and each
//! output port runs a crosspoint scheduler over the N buffers in its
//! column. There is no admission policy to tune and no preemption —
//! isolation is total (one input can never take another's buffer) but
//! so is the fragmentation (an idle crosspoint's buffer helps nobody),
//! which is exactly the trade the scheme shootout measures against the
//! shared-memory schemes.
//!
//! The model lives as an optional component on [`crate::Switch`]
//! (`Switch::xp`): when present, the engine's arrival/transmit/flush
//! paths route through the crosspoint state and the shared-memory
//! partitions stay empty. Everything is driven through the same `Env`
//! trait as the shared-memory paths, so CQ runs inherit every
//! determinism guarantee (repeat-run, serial vs `--threads N`, fault
//! injection) unchanged.

use crate::event::NodeId;
use crate::packet::Packet;
use std::collections::VecDeque;

/// How an output port picks among the crosspoint buffers in its column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XpSched {
    /// Rotate over non-empty crosspoints, one packet per grant — the
    /// cheap, starvation-free default.
    RoundRobin,
    /// Serve the crosspoint with the most queued bytes (LQF); ties
    /// break toward the lowest input index.
    Longest,
}

/// Encodes a previous-hop node id into the `Packet::last_hop` stamp:
/// hosts map to even values, switches to odd, so the two index spaces
/// cannot collide.
#[inline]
pub fn encode_hop(node: NodeId) -> u32 {
    match node {
        NodeId::Host(h) => h << 1,
        NodeId::Switch(s) => (s << 1) | 1,
    }
}

/// Per-switch crosspoint-buffer state: `n_in × n_out` dedicated FIFO
/// buffers of [`Crosspoint::cap`] bytes each, plus the per-output
/// scheduler cursors.
#[derive(Debug)]
pub struct Crosspoint {
    /// Number of inputs (one per distinct neighbor that can send here).
    pub n_in: usize,
    /// Dedicated capacity of each crosspoint buffer in bytes: the
    /// switch's total buffer divided evenly over all `n_out · n_in`
    /// crosspoints — the CQ design point that buffers shrink as the
    /// square of the radix.
    pub cap: u64,
    /// Crosspoint FIFOs, indexed `out * n_in + in`.
    pub queues: Vec<VecDeque<Packet>>,
    /// Bytes queued per crosspoint (mirrors `queues`).
    pub occ: Vec<u64>,
    /// Bytes queued per output column (Σ over its inputs) — the ECN
    /// marking analog of the output-queued switch's queue length.
    pub out_occ: Vec<u64>,
    /// Total bytes queued across all crosspoints.
    pub total: u64,
    /// Total capacity across all crosspoints.
    pub total_cap: u64,
    /// The crosspoint scheduler.
    pub sched: XpSched,
    /// Per-output round-robin cursor (last granted input).
    pub cursor: Vec<usize>,
    /// Sorted encoded neighbor ids; the position of a packet's
    /// `last_hop` stamp in this list is its input index.
    ingress: Vec<u32>,
}

impl Crosspoint {
    /// Builds the crosspoint state for a switch with `n_out` output
    /// ports, the given (encoded, deduplicated) ingress neighbor set
    /// and `total_buffer` bytes to divide among the crosspoints.
    pub fn new(n_out: usize, mut ingress: Vec<u32>, total_buffer: u64, sched: XpSched) -> Self {
        ingress.sort_unstable();
        ingress.dedup();
        let n_in = ingress.len().max(1);
        let n_xp = n_out * n_in;
        let cap = total_buffer / n_xp as u64;
        Crosspoint {
            n_in,
            cap,
            queues: (0..n_xp).map(|_| VecDeque::new()).collect(),
            occ: vec![0; n_xp],
            out_occ: vec![0; n_out],
            total: 0,
            total_cap: cap * n_xp as u64,
            sched,
            cursor: vec![0; n_out],
            ingress,
        }
    }

    /// Input index of an encoded previous-hop stamp, or `None` if the
    /// sender is not a neighbor of this switch.
    #[inline]
    pub fn input_for(&self, hop: u32) -> Option<usize> {
        self.ingress.binary_search(&hop).ok()
    }

    /// Flat index of crosspoint `(out, inp)`.
    #[inline]
    pub fn xp(&self, out: usize, inp: usize) -> usize {
        out * self.n_in + inp
    }

    /// Buffer utilization over all crosspoints (drop-context metric).
    #[inline]
    pub fn util(&self) -> f64 {
        if self.total_cap == 0 {
            0.0
        } else {
            self.total as f64 / self.total_cap as f64
        }
    }

    /// Picks the next input to serve on output `out`, or `None` when the
    /// whole column is empty. Round-robin advances the cursor; LQF takes
    /// the fullest crosspoint.
    pub fn pick(&mut self, out: usize) -> Option<usize> {
        let base = out * self.n_in;
        match self.sched {
            XpSched::RoundRobin => {
                let start = self.cursor[out];
                for k in 1..=self.n_in {
                    let inp = (start + k) % self.n_in;
                    if !self.queues[base + inp].is_empty() {
                        self.cursor[out] = inp;
                        return Some(inp);
                    }
                }
                None
            }
            XpSched::Longest => {
                let mut best = None;
                let mut best_occ = 0u64;
                for inp in 0..self.n_in {
                    let occ = self.occ[base + inp];
                    if occ > best_occ {
                        best = Some(inp);
                        best_occ = occ;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn pkt(len: u32) -> Packet {
        Packet::data(0, 0, 1, 0, len, 0, 0)
    }

    fn push(xp: &mut Crosspoint, out: usize, inp: usize, len: u32) {
        let idx = xp.xp(out, inp);
        let p = pkt(len);
        xp.occ[idx] += p.wire_bytes();
        xp.out_occ[out] += p.wire_bytes();
        xp.total += p.wire_bytes();
        xp.queues[idx].push_back(p);
    }

    #[test]
    fn capacity_divides_by_the_square() {
        let xp = Crosspoint::new(4, vec![0, 2, 4, 6], 160_000, XpSched::RoundRobin);
        assert_eq!(xp.n_in, 4);
        assert_eq!(xp.cap, 10_000); // 160 000 / (4 × 4)
        assert_eq!(xp.total_cap, 160_000);
    }

    #[test]
    fn ingress_map_is_sorted_and_deduplicated() {
        let xp = Crosspoint::new(1, vec![9, 3, 9, 1], 1_000, XpSched::RoundRobin);
        assert_eq!(xp.n_in, 3);
        assert_eq!(xp.input_for(1), Some(0));
        assert_eq!(xp.input_for(3), Some(1));
        assert_eq!(xp.input_for(9), Some(2));
        assert_eq!(xp.input_for(5), None);
    }

    #[test]
    fn hop_encoding_separates_hosts_and_switches() {
        assert_ne!(
            encode_hop(NodeId::Host(7)),
            encode_hop(NodeId::Switch(7)),
            "host 7 and switch 7 must encode differently"
        );
        assert_eq!(encode_hop(NodeId::Host(3)), 6);
        assert_eq!(encode_hop(NodeId::Switch(3)), 7);
    }

    #[test]
    fn round_robin_rotates_over_nonempty_inputs() {
        let mut xp = Crosspoint::new(1, vec![0, 1, 2], 30_000, XpSched::RoundRobin);
        push(&mut xp, 0, 0, 100);
        push(&mut xp, 0, 0, 100);
        push(&mut xp, 0, 2, 100);
        // Cursor starts at 0: first grant goes to the next nonempty
        // input after 0 (input 2), then wraps back to 0.
        assert_eq!(xp.pick(0), Some(2));
        assert_eq!(xp.pick(0), Some(0));
        // Nothing is dequeued by pick itself; the cursor still rotates.
        assert_eq!(xp.pick(0), Some(2));
    }

    #[test]
    fn longest_takes_the_fullest_crosspoint() {
        let mut xp = Crosspoint::new(1, vec![0, 1, 2], 30_000, XpSched::Longest);
        push(&mut xp, 0, 1, 100);
        push(&mut xp, 0, 2, 500);
        assert_eq!(xp.pick(0), Some(2));
        // Ties break toward the lowest input index.
        let mut xp = Crosspoint::new(1, vec![0, 1], 30_000, XpSched::Longest);
        push(&mut xp, 0, 0, 100);
        push(&mut xp, 0, 1, 100);
        assert_eq!(xp.pick(0), Some(0));
    }

    #[test]
    fn empty_column_yields_none() {
        let mut xp = Crosspoint::new(2, vec![0, 1], 10_000, XpSched::RoundRobin);
        assert_eq!(xp.pick(0), None);
        assert_eq!(xp.pick(1), None);
    }
}
