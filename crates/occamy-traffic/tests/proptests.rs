//! Property-based tests for the workload generators.

use occamy_traffic::{
    all_to_all, web_search, BackgroundWorkload, DoubleBinaryTree, EmpiricalCdf, QueryWorkload,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The inverse CDF is monotone non-decreasing in probability.
    #[test]
    fn inverse_cdf_is_monotone(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let cdf = web_search();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(cdf.inverse(lo) <= cdf.inverse(hi));
    }

    /// Samples always fall within the distribution's support.
    #[test]
    fn samples_within_support(seed in 0u64..1_000) {
        let cdf = web_search();
        let (lo, hi) = cdf.support();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let v = cdf.sample(&mut rng);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    /// A two-point CDF reproduces a uniform distribution's mean.
    #[test]
    fn uniform_cdf_mean(a in 0.0f64..1_000.0, width in 1.0f64..10_000.0) {
        let cdf = EmpiricalCdf::new(vec![(a, 0.0), (a + width, 1.0)]);
        prop_assert!((cdf.mean() - (a + width / 2.0)).abs() < 1e-6);
    }

    /// Double binary trees are valid for every rank count, and the two
    /// interiors cover all ranks with at most one overlap-free split.
    #[test]
    fn double_tree_always_valid(n in 2usize..300) {
        let dbt = DoubleBinaryTree::new(n);
        prop_assert!(dbt.check_valid(), "invalid for n = {}", n);
        // Edge count per tree: exactly n − 1 (spanning tree).
        let flows = dbt.flows(1, 0, 0);
        prop_assert_eq!(flows.len(), 4 * (n - 1));
    }

    /// Background arrivals respect the requested horizon and host range,
    /// and the offered load is within 25% of the target (law of large
    /// numbers over a long horizon).
    #[test]
    fn background_load_calibration(load_pct in 20u64..150, seed in 0u64..50) {
        let load = load_pct as f64 / 100.0;
        let wl = BackgroundWorkload::new(8, 10_000_000_000, load, web_search());
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = 3_000_000_000_000u64; // 3 s
        let flows = wl.generate(horizon, &mut rng);
        let bytes: u64 = flows.iter().map(|f| f.bytes).sum();
        let offered = bytes as f64 * 8.0 / (horizon as f64 / 1e12) / (8.0 * 10e9);
        prop_assert!(
            (offered / load - 1.0).abs() < 0.25,
            "offered {} vs target {}", offered, load
        );
        prop_assert!(flows.iter().all(|f| f.src < 8 && f.dst < 8 && f.src != f.dst));
        prop_assert!(flows.iter().all(|f| f.start_ps < horizon));
    }

    /// Queries split bytes exactly across distinct servers.
    #[test]
    fn query_splitting(
        n_hosts in 3usize..32,
        fanout_frac in 0.1f64..0.99,
        bytes in 1_000u64..10_000_000,
        seed in 0u64..100,
    ) {
        let fanout = ((n_hosts as f64 - 1.0) * fanout_frac).max(1.0) as usize;
        let w = QueryWorkload::new(n_hosts, fanout, bytes, 100.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let q = w.make_query(0, 0, 1, &mut rng);
        prop_assert_eq!(q.responses.len(), fanout);
        let mut servers: Vec<usize> = q.responses.iter().map(|f| f.src).collect();
        servers.sort_unstable();
        servers.dedup();
        prop_assert_eq!(servers.len(), fanout, "duplicate servers");
        prop_assert!(q.responses.iter().all(|f| f.dst == 0 && f.src != 0));
        let total: u64 = q.responses.iter().map(|f| f.bytes).sum();
        prop_assert!(total <= bytes.max(fanout as u64));
    }

    /// All-to-all emits exactly n(n−1) flows covering every ordered pair.
    #[test]
    fn all_to_all_covers_pairs(n in 2usize..24) {
        let flows = all_to_all(n, 100, 0);
        prop_assert_eq!(flows.len(), n * (n - 1));
        let mut pairs: Vec<(usize, usize)> = flows.iter().map(|f| (f.src, f.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(pairs.len(), n * (n - 1), "duplicate pair");
    }
}
