//! Incast query workload (partition-aggregate, paper §6.2/§6.4).

use crate::FlowSpec;
use rand::Rng;

/// One generated query: the client, its servers, and the response flows.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Query identity (also stamped on the response flows).
    pub id: u64,
    /// Aggregating client host.
    pub client: usize,
    /// Query issue time (ps).
    pub start_ps: u64,
    /// Response flows, one per server.
    pub responses: Vec<FlowSpec>,
}

/// Incast query workload.
///
/// A client periodically (Poisson) sends a query to `fanout` distinct
/// servers; each responds with `query_bytes / fanout`. QCT is the time
/// from query issue until the last response completes. This reproduces
/// the paper's traffic generator \[16\] setup: "a client on each host
/// periodically sends queries to 16 servers on other hosts".
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// Host count.
    pub n_hosts: usize,
    /// Incast fan-out (number of servers per query).
    pub fanout: usize,
    /// Total response bytes per query.
    pub query_bytes: u64,
    /// Queries per second *per client host*.
    pub qps_per_host: f64,
}

impl QueryWorkload {
    /// Creates a workload description.
    ///
    /// When `fanout` exceeds `n_hosts − 1`, servers repeat cyclically —
    /// the paper's DPDK testbed runs 2 server processes per host, so 16
    /// responses come from 7 machines (§6.2).
    ///
    /// # Panics
    ///
    /// Panics unless `fanout >= 1`, `n_hosts >= 2` and the rate is
    /// positive.
    pub fn new(n_hosts: usize, fanout: usize, query_bytes: u64, qps_per_host: f64) -> Self {
        assert!(fanout >= 1, "fanout must be at least 1");
        assert!(n_hosts >= 2, "need at least one possible server");
        assert!(qps_per_host > 0.0, "query rate must be positive");
        QueryWorkload {
            n_hosts,
            fanout,
            query_bytes,
            qps_per_host,
        }
    }

    /// Generates all queries issued in `[0, duration_ps)`, across all
    /// client hosts, sorted by start time.
    pub fn generate<R: Rng>(&self, duration_ps: u64, rng: &mut R) -> Vec<QuerySpec> {
        let mut queries = Vec::new();
        let mut id = 0u64;
        for client in 0..self.n_hosts {
            for (t, qid) in self.arrival_times(duration_ps, &mut id, rng) {
                queries.push(self.make_query(client, t, qid, rng));
            }
        }
        queries.sort_by_key(|q| q.start_ps);
        queries
    }

    /// Generates queries from a single fixed `client` (the buffer-choking
    /// experiments pin both queries and background on one victim host).
    pub fn generate_for_client<R: Rng>(
        &self,
        client: usize,
        duration_ps: u64,
        rng: &mut R,
    ) -> Vec<QuerySpec> {
        let mut id = 0u64;
        self.arrival_times(duration_ps, &mut id, rng)
            .into_iter()
            .map(|(t, qid)| self.make_query(client, t, qid, rng))
            .collect()
    }

    fn arrival_times<R: Rng>(
        &self,
        duration_ps: u64,
        id: &mut u64,
        rng: &mut R,
    ) -> Vec<(u64, u64)> {
        let mean_gap = 1e12 / self.qps_per_host;
        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -mean_gap * u.ln();
            if t >= duration_ps as f64 {
                return out;
            }
            out.push((t as u64, *id));
            *id += 1;
        }
    }

    /// Generates a single query from `client` at `start_ps` (used by the
    /// micro-benchmarks that need one burst at a precise instant).
    pub fn make_query<R: Rng>(
        &self,
        client: usize,
        start_ps: u64,
        id: u64,
        rng: &mut R,
    ) -> QuerySpec {
        // Shuffle the other hosts, then assign servers cyclically so a
        // fanout above `n_hosts − 1` reuses hosts evenly (multiple server
        // processes per machine).
        let mut candidates: Vec<usize> = (0..self.n_hosts).filter(|&h| h != client).collect();
        for k in 0..candidates.len().saturating_sub(1) {
            let pick = rng.gen_range(k..candidates.len());
            candidates.swap(k, pick);
        }
        let mut responses = Vec::with_capacity(self.fanout);
        let per_server = (self.query_bytes / self.fanout as u64).max(1);
        for k in 0..self.fanout {
            responses.push(FlowSpec::query_response(
                candidates[k % candidates.len()],
                client,
                per_server,
                start_ps,
                id,
            ));
        }
        QuerySpec {
            id,
            client,
            start_ps,
            responses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn query_has_distinct_servers_and_split_bytes() {
        let w = QueryWorkload::new(8, 5, 1_000_000, 10.0);
        let mut rng = StdRng::seed_from_u64(2);
        let q = w.make_query(3, 42, 7, &mut rng);
        assert_eq!(q.responses.len(), 5);
        assert!(q.responses.iter().all(|f| f.dst == 3));
        assert!(q.responses.iter().all(|f| f.src != 3));
        assert!(q.responses.iter().all(|f| f.bytes == 200_000));
        assert!(q.responses.iter().all(|f| f.query == Some(7)));
        let mut srcs: Vec<_> = q.responses.iter().map(|f| f.src).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 5, "servers must be distinct");
    }

    #[test]
    fn rate_scales_with_hosts_and_qps() {
        let w = QueryWorkload::new(16, 4, 100_000, 200.0);
        let mut rng = StdRng::seed_from_u64(4);
        // 16 hosts × 200 qps × 50 ms ⇒ ~160 queries.
        let qs = w.generate(50_000_000_000, &mut rng);
        assert!(
            (120..=200).contains(&qs.len()),
            "expected ~160 queries, got {}",
            qs.len()
        );
        assert!(qs.windows(2).all(|p| p[0].start_ps <= p[1].start_ps));
    }

    #[test]
    fn query_ids_are_unique() {
        let w = QueryWorkload::new(6, 3, 60_000, 500.0);
        let mut rng = StdRng::seed_from_u64(6);
        let qs = w.generate(20_000_000_000, &mut rng);
        let mut ids: Vec<_> = qs.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), qs.len());
    }

    #[test]
    fn fanout_beyond_hosts_cycles_servers() {
        let w = QueryWorkload::new(8, 16, 160_000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let q = w.make_query(0, 0, 0, &mut rng);
        assert_eq!(q.responses.len(), 16);
        // Every other host serves at least twice (16 responses / 7 hosts).
        for h in 1..8 {
            let served = q.responses.iter().filter(|f| f.src == h).count();
            assert!((2..=3).contains(&served), "host {h} served {served}");
        }
        assert!(q.responses.iter().all(|f| f.src != 0 && f.dst == 0));
    }

    #[test]
    fn generate_for_client_pins_the_client() {
        let w = QueryWorkload::new(8, 7, 70_000, 2_000.0);
        let mut rng = StdRng::seed_from_u64(5);
        let qs = w.generate_for_client(3, 10_000_000_000, &mut rng);
        assert!(!qs.is_empty());
        assert!(qs.iter().all(|q| q.client == 3));
        assert!(qs
            .iter()
            .flat_map(|q| &q.responses)
            .all(|f| f.dst == 3 && f.src != 3));
    }

    #[test]
    fn tiny_queries_still_send_a_byte() {
        let w = QueryWorkload::new(4, 3, 2, 1.0); // 2 bytes / 3 servers
        let mut rng = StdRng::seed_from_u64(8);
        let q = w.make_query(0, 0, 0, &mut rng);
        assert!(q.responses.iter().all(|f| f.bytes == 1));
    }
}
