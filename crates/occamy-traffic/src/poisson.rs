//! Poisson background traffic at a target network load.

use crate::{EmpiricalCdf, FlowSpec};
use rand::Rng;

/// Background workload: flows between random host pairs, sizes from an
/// empirical CDF, arrivals from a Poisson process calibrated to a target
/// load (paper §6.2/§6.4: "we generate background flows according to a
/// Poisson process; the sender and receiver are randomly chosen").
///
/// The aggregate arrival rate is
/// `λ = load · n_hosts · host_rate / (8 · mean_flow_size)` flows/s, which
/// makes the *offered* load on host access links equal to `load` (each
/// flow consumes its size once at the sender and once at the receiver; a
/// uniformly random pair pattern spreads both evenly).
#[derive(Debug, Clone)]
pub struct BackgroundWorkload {
    /// Host count.
    pub n_hosts: usize,
    /// Access-link rate in bits/s.
    pub host_rate_bps: u64,
    /// Target load as a fraction of access capacity (1.2 = 120%).
    pub load: f64,
    /// Flow-size distribution.
    pub sizes: EmpiricalCdf,
}

impl BackgroundWorkload {
    /// Creates a workload description.
    pub fn new(n_hosts: usize, host_rate_bps: u64, load: f64, sizes: EmpiricalCdf) -> Self {
        assert!(n_hosts >= 2, "need at least two hosts");
        assert!(load > 0.0, "load must be positive");
        BackgroundWorkload {
            n_hosts,
            host_rate_bps,
            load,
            sizes,
        }
    }

    /// Mean flow inter-arrival time in picoseconds (aggregate).
    pub fn mean_interarrival_ps(&self) -> f64 {
        let bytes_per_sec = self.load * self.n_hosts as f64 * self.host_rate_bps as f64 / 8.0;
        let flows_per_sec = bytes_per_sec / self.sizes.mean();
        1e12 / flows_per_sec
    }

    /// Generates all flows arriving in `[0, duration_ps)`.
    pub fn generate<R: Rng>(&self, duration_ps: u64, rng: &mut R) -> Vec<FlowSpec> {
        let mean_gap = self.mean_interarrival_ps();
        let mut flows = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival via inverse transform.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -mean_gap * u.ln();
            if t >= duration_ps as f64 {
                break;
            }
            let src = rng.gen_range(0..self.n_hosts);
            let mut dst = rng.gen_range(0..self.n_hosts - 1);
            if dst >= src {
                dst += 1;
            }
            let bytes = self.sizes.sample_bytes(rng);
            flows.push(FlowSpec::background(src, dst, bytes, t as u64));
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web_search;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(load: f64) -> BackgroundWorkload {
        BackgroundWorkload::new(16, 10_000_000_000, load, web_search())
    }

    #[test]
    fn offered_load_matches_target() {
        let w = workload(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let duration_ps: u64 = 2_000_000_000_000; // 2 s
        let flows = w.generate(duration_ps, &mut rng);
        let total_bytes: u64 = flows.iter().map(|f| f.bytes).sum();
        let offered = total_bytes as f64 * 8.0 / (duration_ps as f64 / 1e12) / (16.0 * 10e9);
        assert!(
            (offered - 0.5).abs() < 0.05,
            "offered load {offered:.3} != 0.5"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_bounded() {
        let w = workload(0.4);
        let mut rng = StdRng::seed_from_u64(9);
        let flows = w.generate(50_000_000_000, &mut rng);
        assert!(!flows.is_empty());
        assert!(flows.windows(2).all(|p| p[0].start_ps <= p[1].start_ps));
        assert!(flows.iter().all(|f| f.start_ps < 50_000_000_000));
    }

    #[test]
    fn no_self_flows() {
        let w = workload(1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let flows = w.generate(100_000_000_000, &mut rng);
        assert!(flows.iter().all(|f| f.src != f.dst));
        assert!(flows.iter().all(|f| f.src < 16 && f.dst < 16));
    }

    #[test]
    fn higher_load_means_more_flows() {
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let low = workload(0.2).generate(500_000_000_000, &mut rng1).len();
        let high = workload(0.9).generate(500_000_000_000, &mut rng2).len();
        assert!(
            high as f64 > low as f64 * 3.0,
            "flows at 90% ({high}) vs 20% ({low})"
        );
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let w = workload(0.4);
        let a = w.generate(10_000_000_000, &mut StdRng::seed_from_u64(1));
        let b = w.generate(10_000_000_000, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
