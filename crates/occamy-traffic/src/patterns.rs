//! Deterministic traffic patterns: all-to-all and permutation (Fig. 18).

use crate::FlowSpec;

/// All-to-all: every host sends `bytes` to every other host, all starting
/// at `start_ps` (paper §6.4: "every host sends the same amount of data
/// to all other hosts").
pub fn all_to_all(n_hosts: usize, bytes: u64, start_ps: u64) -> Vec<FlowSpec> {
    let mut flows = Vec::with_capacity(n_hosts * (n_hosts - 1));
    for src in 0..n_hosts {
        for dst in 0..n_hosts {
            if src != dst {
                flows.push(FlowSpec::background(src, dst, bytes, start_ps));
            }
        }
    }
    flows
}

/// Permutation: host `i` sends `bytes` to host `(i + shift) mod n`.
///
/// A standard fully load-balanced pattern used as an ablation workload.
///
/// # Panics
///
/// Panics if `shift % n_hosts == 0` (every host would send to itself).
pub fn permutation(n_hosts: usize, shift: usize, bytes: u64, start_ps: u64) -> Vec<FlowSpec> {
    assert!(
        shift % n_hosts != 0,
        "shift must not map hosts onto themselves"
    );
    (0..n_hosts)
        .map(|src| FlowSpec::background(src, (src + shift) % n_hosts, bytes, start_ps))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_counts_and_symmetry() {
        let flows = all_to_all(4, 1_000, 7);
        assert_eq!(flows.len(), 12);
        assert!(flows.iter().all(|f| f.src != f.dst));
        assert!(flows.iter().all(|f| f.bytes == 1_000 && f.start_ps == 7));
        // Every host sends exactly n−1 flows and receives n−1 flows.
        for h in 0..4 {
            assert_eq!(flows.iter().filter(|f| f.src == h).count(), 3);
            assert_eq!(flows.iter().filter(|f| f.dst == h).count(), 3);
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        let flows = permutation(8, 3, 500, 0);
        assert_eq!(flows.len(), 8);
        let mut dsts: Vec<_> = flows.iter().map(|f| f.dst).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "onto themselves")]
    fn zero_shift_rejected() {
        permutation(4, 8, 1, 0);
    }
}
