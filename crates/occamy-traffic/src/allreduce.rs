//! All-reduce traffic from double binary trees (Sanders et al. \[69\]).

use crate::FlowSpec;

/// The two complementary binary trees used by double-binary-tree
/// all-reduce (the "prevailing" algorithm the paper cites, also used by
/// NCCL).
///
/// Construction: tree 1 is the in-order binary tree over 1-indexed nodes
/// `1..=n` in which node `r`'s depth is given by the trailing zeros of
/// `r` — all interior nodes are even, all leaves odd. Tree 2 is tree 1
/// relabeled by a cyclic shift of one, which maps the even interior set
/// onto odd ranks, so **every rank is an interior node in at most one
/// tree** for any `n`. Each tree carries half the data: a reduce phase
/// sends child→parent along the edges, a broadcast phase parent→child.
/// For the paper's workload all flows have identical size (§6.4, Fig. 19).
#[derive(Debug, Clone)]
pub struct DoubleBinaryTree {
    n: usize,
    /// `parent[t][r]` = parent of rank `r` in tree `t`, `None` for roots.
    parents: [Vec<Option<usize>>; 2],
}

impl DoubleBinaryTree {
    /// Builds the double tree over `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "all-reduce needs at least two ranks");
        let tree1 = in_order_parents(n);
        // Tree 2: relabel every node by a cyclic +1 shift. Tree 1's
        // interior ranks are odd (0-indexed), and the shift maps odd onto
        // even ranks for every n, so the interiors cannot overlap.
        let shift = move |r: usize| (r + 1) % n;
        let mut tree2 = vec![None; n];
        for (r, &p) in tree1.iter().enumerate() {
            tree2[shift(r)] = p.map(shift);
        }
        DoubleBinaryTree {
            n,
            parents: [tree1, tree2],
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n
    }

    /// Parent of `rank` in `tree` (0 or 1); `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `tree > 1` or `rank >= n`.
    pub fn parent(&self, tree: usize, rank: usize) -> Option<usize> {
        self.parents[tree][rank]
    }

    /// Ranks that are interior (have at least one child) in `tree`.
    pub fn interior(&self, tree: usize) -> Vec<usize> {
        let mut is_parent = vec![false; self.n];
        for &p in self.parents[tree].iter().flatten() {
            is_parent[p] = true;
        }
        (0..self.n).filter(|&r| is_parent[r]).collect()
    }

    /// Validates the double-tree property: each rank is interior in at
    /// most one tree, each tree is a single connected *binary* tree.
    pub fn check_valid(&self) -> bool {
        let i1 = self.interior(0);
        let i2 = self.interior(1);
        let overlap = i1.iter().any(|r| i2.contains(r));
        !overlap && self.is_tree(0) && self.is_tree(1) && self.is_binary(0) && self.is_binary(1)
    }

    fn is_binary(&self, t: usize) -> bool {
        let mut children = vec![0usize; self.n];
        for &p in self.parents[t].iter().flatten() {
            children[p] += 1;
        }
        children.iter().all(|&c| c <= 2)
    }

    fn is_tree(&self, t: usize) -> bool {
        // Exactly one root, and every node reaches it without cycles.
        let roots = self.parents[t].iter().filter(|p| p.is_none()).count();
        if roots != 1 {
            return false;
        }
        for start in 0..self.n {
            let mut hops = 0;
            let mut cur = start;
            while let Some(p) = self.parents[t][cur] {
                cur = p;
                hops += 1;
                if hops > self.n {
                    return false; // cycle
                }
            }
        }
        true
    }

    /// Emits the all-reduce flow set: for both trees, a reduce flow
    /// (child→parent) starting at `start_ps` and a broadcast flow
    /// (parent→child) starting at `start_ps + broadcast_offset_ps`, all of
    /// `bytes` bytes.
    pub fn flows(&self, bytes: u64, start_ps: u64, broadcast_offset_ps: u64) -> Vec<FlowSpec> {
        let mut out = Vec::new();
        for t in 0..2 {
            for (child, &p) in self.parents[t].iter().enumerate() {
                if let Some(parent) = p {
                    out.push(FlowSpec::background(child, parent, bytes, start_ps));
                    out.push(FlowSpec::background(
                        parent,
                        child,
                        bytes,
                        start_ps + broadcast_offset_ps,
                    ));
                }
            }
        }
        out
    }
}

/// Parent array (0-indexed) of the trailing-zeros in-order binary tree.
///
/// Working 1-indexed: node `r` with `t` trailing zero bits sits at height
/// `t`; its parent is `r − 2^t` when bit `t+1` of `r` is set, otherwise
/// `r + 2^t` — unless that exceeds `n` (a truncated right spine), in
/// which case the parent folds back to `r − 2^t`. The root is the largest
/// power of two `≤ n`. All interior nodes are even (1-indexed), so leaves
/// are exactly the odd nodes.
fn in_order_parents(n: usize) -> Vec<Option<usize>> {
    (1..=n as u64)
        .map(|r| parent_1idx(r, n as u64).map(|p| (p - 1) as usize))
        .collect()
}

/// Parent of 1-indexed node `r` in the tz in-order tree over `1..=n`.
fn parent_1idx(r: u64, n: u64) -> Option<u64> {
    let t = r.trailing_zeros();
    let step = 1u64 << t;
    let parent = if (r >> (t + 1)) & 1 == 1 {
        r - step
    } else {
        let cand = r + step;
        if cand <= n {
            cand
        } else {
            r - step
        }
    };
    if parent == 0 {
        None // `r` is the largest power of two ≤ n: the root
    } else {
        Some(parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_tree_shape() {
        // n = 7 in-order tree: root 3, interior {1, 3, 5}, leaves even.
        let t = in_order_parents(7);
        assert_eq!(t[3], None);
        assert_eq!(t[1], Some(3));
        assert_eq!(t[5], Some(3));
        assert_eq!(t[0], Some(1));
        assert_eq!(t[2], Some(1));
        assert_eq!(t[4], Some(5));
        assert_eq!(t[6], Some(5));
    }

    #[test]
    fn double_tree_valid_for_many_sizes() {
        for n in [2, 3, 4, 5, 7, 8, 15, 16, 31, 64, 100, 128] {
            let dbt = DoubleBinaryTree::new(n);
            assert!(dbt.check_valid(), "invalid double tree for n = {n}");
        }
    }

    #[test]
    fn interiors_are_disjoint_at_128() {
        let dbt = DoubleBinaryTree::new(128);
        let i1 = dbt.interior(0);
        let i2 = dbt.interior(1);
        assert!(i1.iter().all(|r| !i2.contains(r)));
        // Together the interiors cover almost all ranks (n−1 edges each).
        assert!(i1.len() + i2.len() >= 126);
    }

    #[test]
    fn flow_set_covers_every_edge_twice() {
        let dbt = DoubleBinaryTree::new(8);
        let flows = dbt.flows(1_000, 0, 500);
        // Each tree has n−1 = 7 edges, ×2 trees ×2 directions = 28 flows.
        assert_eq!(flows.len(), 28);
        assert!(flows.iter().all(|f| f.bytes == 1_000));
        let reduce = flows.iter().filter(|f| f.start_ps == 0).count();
        let bcast = flows.iter().filter(|f| f.start_ps == 500).count();
        assert_eq!(reduce, 14);
        assert_eq!(bcast, 14);
    }

    #[test]
    fn broadcast_reverses_reduce() {
        let dbt = DoubleBinaryTree::new(6);
        let flows = dbt.flows(10, 0, 1);
        let reduce: Vec<_> = flows.iter().filter(|f| f.start_ps == 0).collect();
        let bcast: Vec<_> = flows.iter().filter(|f| f.start_ps == 1).collect();
        for r in &reduce {
            assert!(
                bcast.iter().any(|b| b.src == r.dst && b.dst == r.src),
                "missing reverse of {} → {}",
                r.src,
                r.dst
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn tiny_allreduce_rejected() {
        DoubleBinaryTree::new(1);
    }
}
