//! Workload generators for the Occamy experiments.
//!
//! Reimplements the traffic the paper evaluates with (§6):
//!
//! - [`EmpiricalCdf`] / [`web_search`] — flow sizes drawn from the
//!   web-search distribution of the DCTCP paper \[5\];
//! - [`BackgroundWorkload`] — Poisson flow arrivals between random host
//!   pairs at a target network load;
//! - [`QueryWorkload`] — incast queries: a client fans a request to `n`
//!   servers, each responding with `query_size / n` bytes (QCT is the
//!   completion of all responses);
//! - [`all_to_all`] — every host sends an identical amount to every other
//!   host (Fig. 18);
//! - [`DoubleBinaryTree`] — the all-reduce flow pattern built from the two
//!   complementary binary trees of Sanders et al. \[69\] (Fig. 19).
//!
//! Generators emit plain [`FlowSpec`] values: the simulator stays
//! workload-agnostic and the bench harness wires the two together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allreduce;
mod dist;
mod flows;
mod incast;
mod patterns;
mod poisson;

pub use allreduce::DoubleBinaryTree;
pub use dist::{web_search, EmpiricalCdf};
pub use flows::{FlowSpec, TrafficClass};
pub use incast::{QuerySpec, QueryWorkload};
pub use patterns::{all_to_all, permutation};
pub use poisson::BackgroundWorkload;
