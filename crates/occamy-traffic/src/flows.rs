//! The flow specification emitted by all generators.

/// Traffic class, mapping to switch queue priority and metric slicing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// Incast query/response traffic.
    Query,
    /// Background traffic (web-search, all-to-all, all-reduce).
    Background,
}

/// One application flow to inject into the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Sending host index.
    pub src: usize,
    /// Receiving host index.
    pub dst: usize,
    /// Payload bytes to transfer.
    pub bytes: u64,
    /// Start time in picoseconds.
    pub start_ps: u64,
    /// Traffic class.
    pub class: TrafficClass,
    /// Incast query this flow answers, if any.
    pub query: Option<u64>,
}

impl FlowSpec {
    /// A background flow.
    pub fn background(src: usize, dst: usize, bytes: u64, start_ps: u64) -> Self {
        FlowSpec {
            src,
            dst,
            bytes,
            start_ps,
            class: TrafficClass::Background,
            query: None,
        }
    }

    /// A query-response flow belonging to query `query`.
    pub fn query_response(src: usize, dst: usize, bytes: u64, start_ps: u64, query: u64) -> Self {
        FlowSpec {
            src,
            dst,
            bytes,
            start_ps,
            class: TrafficClass::Query,
            query: Some(query),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let b = FlowSpec::background(1, 2, 1_000, 5);
        assert_eq!(b.class, TrafficClass::Background);
        assert_eq!(b.query, None);
        let q = FlowSpec::query_response(3, 4, 500, 9, 7);
        assert_eq!(q.class, TrafficClass::Query);
        assert_eq!(q.query, Some(7));
        assert_eq!(q.src, 3);
        assert_eq!(q.dst, 4);
    }
}
