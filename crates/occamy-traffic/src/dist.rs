//! Empirical flow-size distributions (inverse-transform sampling).

use rand::Rng;

/// An empirical CDF defined by `(value, cumulative_probability)` points
/// with linear interpolation between points.
///
/// Sampling uses inverse-transform: draw `u ~ U(0,1)`, find the CDF
/// segment containing `u`, and interpolate the value. This is how ns-3
/// experiment scripts consume the published workload CDF files.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Builds a distribution from `(value, cdf)` points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given, probabilities are not
    /// non-decreasing in `[0, 1]` ending at 1, or values decrease.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        let mut prev = &points[0];
        assert!(prev.1 >= 0.0, "CDF must start at probability >= 0");
        for p in &points[1..] {
            assert!(p.0 >= prev.0, "values must be non-decreasing");
            assert!(p.1 >= prev.1, "probabilities must be non-decreasing");
            prev = p;
        }
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF must end at probability 1"
        );
        EmpiricalCdf { points }
    }

    /// Samples one value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.inverse(u)
    }

    /// Samples one value and rounds to at least 1 byte.
    pub fn sample_bytes<R: Rng>(&self, rng: &mut R) -> u64 {
        (self.sample(rng).round() as u64).max(1)
    }

    /// Inverse CDF at probability `u` (clamped to the support).
    pub fn inverse(&self, u: f64) -> f64 {
        let u = u.clamp(self.points[0].1, 1.0);
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if u <= p1 {
                if p1 - p0 < 1e-12 {
                    return v1;
                }
                return v0 + (v1 - v0) * (u - p0) / (p1 - p0);
            }
        }
        self.points.last().unwrap().0
    }

    /// Mean of the distribution (piecewise-linear integral).
    pub fn mean(&self) -> f64 {
        let mut m = self.points[0].0 * self.points[0].1;
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            m += (v0 + v1) / 2.0 * (p1 - p0);
        }
        m
    }

    /// Smallest and largest representable values.
    pub fn support(&self) -> (f64, f64) {
        (self.points[0].0, self.points.last().unwrap().0)
    }
}

/// The web-search flow-size distribution (DCTCP paper \[5\]), in bytes.
///
/// These are the canonical CDF points used by the pFabric/HPCC/ABM
/// lineage of simulation studies: ~60% of flows are under 133 KB but
/// ~95% of bytes come from flows over 1 MB, giving the heavy-tailed mix
/// that stresses shared buffers.
pub fn web_search() -> EmpiricalCdf {
    EmpiricalCdf::new(vec![
        (1.0, 0.0),
        (6_000.0, 0.15),
        (13_000.0, 0.20),
        (19_000.0, 0.30),
        (33_000.0, 0.40),
        (53_000.0, 0.53),
        (133_000.0, 0.60),
        (667_000.0, 0.70),
        (1_333_000.0, 0.80),
        (3_333_000.0, 0.90),
        (6_667_000.0, 0.97),
        (20_000_000.0, 1.00),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn inverse_interpolates() {
        let cdf = EmpiricalCdf::new(vec![(0.0, 0.0), (100.0, 0.5), (200.0, 1.0)]);
        assert_eq!(cdf.inverse(0.0), 0.0);
        assert_eq!(cdf.inverse(0.25), 50.0);
        assert_eq!(cdf.inverse(0.5), 100.0);
        assert_eq!(cdf.inverse(0.75), 150.0);
        assert_eq!(cdf.inverse(1.0), 200.0);
    }

    #[test]
    fn mean_of_uniform_is_midpoint() {
        let cdf = EmpiricalCdf::new(vec![(0.0, 0.0), (100.0, 1.0)]);
        assert!((cdf.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn samples_stay_in_support() {
        let cdf = web_search();
        let (lo, hi) = cdf.support();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = cdf.sample(&mut rng);
            assert!(v >= lo && v <= hi, "sample {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn web_search_empirical_mean_matches_analytic() {
        let cdf = web_search();
        let analytic = cdf.mean();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| cdf.sample(&mut rng)).sum();
        let empirical = sum / n as f64;
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "empirical {empirical:.0} vs analytic {analytic:.0}"
        );
        // The distribution is heavy-tailed: mean around 1.1–1.2 MB.
        assert!(analytic > 0.8e6 && analytic < 1.6e6, "mean {analytic}");
    }

    #[test]
    fn web_search_is_heavy_tailed() {
        let cdf = web_search();
        // Median well under the mean.
        let median = cdf.inverse(0.5);
        assert!(median < cdf.mean() / 10.0);
    }

    #[test]
    #[should_panic(expected = "end at probability 1")]
    fn cdf_must_reach_one() {
        EmpiricalCdf::new(vec![(0.0, 0.0), (1.0, 0.9)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn values_must_not_decrease() {
        EmpiricalCdf::new(vec![(10.0, 0.0), (5.0, 1.0)]);
    }

    #[test]
    fn sample_bytes_is_at_least_one() {
        let cdf = EmpiricalCdf::new(vec![(0.0, 0.0), (0.4, 1.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(cdf.sample_bytes(&mut rng) >= 1);
        }
    }
}
