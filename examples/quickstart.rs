//! Quickstart: the Occamy buffer manager on a bare `BufferState`, then a
//! minimal end-to-end simulation.
//!
//! Run with: `cargo run --release --example quickstart`

use occamy::core::{BufferManager, BufferState, Occamy, QueueConfig, Verdict};
use occamy::sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy::sim::{CcAlgo, FlowDesc, SimConfig, MS, SEC, US};
use occamy_core::BmKind;

fn main() {
    // ---------------------------------------------------------------
    // Part 1: the algorithm itself. A 410 KB shared buffer with 8
    // queues; queue 0 is entrenched, then queue 1 wakes up.
    // ---------------------------------------------------------------
    let cfg = QueueConfig::uniform(8, 10_000_000_000, Occamy::RECOMMENDED_ALPHA);
    let mut bm = Occamy::new(cfg);
    let mut state = BufferState::new(410_000, 8);

    // Entrench queue 0 at its solo steady state αB/(1+α). The bookkeeping
    // hooks keep Occamy's incremental over-allocation tracker in sync, as
    // a real substrate would on every enqueue/dequeue.
    while bm.admit(0, 1_500, &state) == Verdict::Accept {
        state.enqueue(0, 1_500).unwrap();
        bm.on_enqueue(0, 1_500, 0, &state);
    }
    println!(
        "queue 0 entrenched at {} KB of a {} KB buffer (threshold now {} KB)",
        state.queue_len(0) / 1_000,
        state.capacity() / 1_000,
        bm.threshold(0, &state) / 1_000,
    );

    // Queue 1 becomes active: buffer is nearly full, and under a
    // non-preemptive scheme queue 0 could only shrink by transmitting.
    // Occamy's reactive path finds it over-allocated and head-drops it.
    let mut expelled = 0u64;
    for _ in 0..200 {
        if bm.admit(1, 1_500, &state) == Verdict::Accept {
            state.enqueue(1, 1_500).unwrap();
            bm.on_enqueue(1, 1_500, 0, &state);
        }
        if let Some(victim) = bm.select_victim(&state) {
            state.dequeue(victim, 1_500).unwrap();
            bm.on_dequeue(victim, 1_500, 0, &state);
            expelled += 1;
        }
    }
    println!(
        "after the burst: q0 = {} KB, q1 = {} KB ({expelled} packets expelled)",
        state.queue_len(0) / 1_000,
        state.queue_len(1) / 1_000,
    );

    // ---------------------------------------------------------------
    // Part 2: the same scheme inside the event-driven simulator — two
    // DCTCP senders incast into one receiver.
    // ---------------------------------------------------------------
    let mut world = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![10_000_000_000; 3],
        prop_ps: US,
        buffer_bytes: 410_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Occamy, 8.0),
        sched: SchedKind::Fifo,
        sim: SimConfig {
            min_rto: 5 * MS,
            ..SimConfig::default()
        },
    });
    for src in 0..2 {
        world.add_flow(FlowDesc {
            src,
            dst: 2,
            bytes: 2_000_000,
            start_ps: 0,
            prio: 0,
            cc: CcAlgo::Dctcp,
            query: None,
            is_query: false,
        });
    }
    world.run_to_completion(SEC);
    for (hot, cold) in world.flows.hot.iter().zip(&world.flows.cold) {
        println!(
            "flow {}: {} bytes in {:.2} ms",
            hot.id,
            hot.bytes,
            cold.end_ps.expect("finished") as f64 / 1e9,
        );
    }
    println!(
        "drops: {} tail, {} head (expelled)",
        world.metrics.drops.tail_drops(),
        world.metrics.drops.head_drops,
    );
}
