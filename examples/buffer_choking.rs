//! The buffer-choking problem (paper §3.1, Fig. 5) and how Occamy fixes
//! it (paper §6.2, Fig. 15).
//!
//! A strict-priority port carries latency-sensitive high-priority incast
//! over low-priority CUBIC bulk flows. The LP queues grab buffer early
//! and — because strict priority starves their drain — release it very
//! slowly. A non-preemptive BM (DT) leaves the HP burst to drop; Occamy
//! actively expels the over-allocated LP buffer.
//!
//! Run with: `cargo run --release --example buffer_choking`

use occamy::sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy::sim::{CcAlgo, FlowDesc, SimConfig, MS, SEC, US};
use occamy_core::BmKind;

fn qct_ms(kind: BmKind) -> (f64, u64) {
    let mut world = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![10_000_000_000; 8],
        prop_ps: US,
        buffer_bytes: 410_000,
        classes: 8,
        // HP gets α = 8, the 7 LP classes α = 1 — the paper's §3.1
        // setup. Seven congested LP queues under DT each settle at
        // B/8, so only ~12% of the buffer stays free for the burst.
        bm: BmSpec::per_class(kind, vec![8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]),
        sched: SchedKind::StrictPriority,
        sim: SimConfig::default(),
    });
    // Low-priority bulk: 14 long CUBIC flows into host 0, two per LP
    // class, entrenching all seven LP queues.
    for i in 0..14 {
        world.add_flow(FlowDesc {
            src: 1 + i % 7,
            dst: 0,
            bytes: 50_000_000,
            start_ps: 0,
            prio: 1 + (i % 7) as u8,
            cc: CcAlgo::Cubic,
            query: None,
            is_query: false,
        });
    }
    // After the LP queues are entrenched, a high-priority incast query
    // arrives with the paper's degree of 40 (5 senders × 8 flows): the
    // 40 initial windows land within one RTT — ~600 KB against a buffer
    // whose free space DT has squeezed to ~B/8.
    for s in 0..5 {
        for f in 0..8 {
            world.add_flow(FlowDesc {
                src: 1 + s,
                dst: 0,
                bytes: 14_600,
                start_ps: 20 * MS,
                prio: 0,
                cc: CcAlgo::Dctcp,
                query: Some(1),
                is_query: true,
            });
            let _ = f;
        }
    }
    world.run_to_completion(3 * SEC);
    let records = world.flow_records();
    let qct = records.qct_ms().mean().expect("query finished");
    (qct, world.metrics.drops.head_drops)
}

fn main() {
    let (dt, _) = qct_ms(BmKind::Dt);
    let (occamy, expelled) = qct_ms(BmKind::Occamy);
    let (pushout, _) = qct_ms(BmKind::Pushout);
    println!("high-priority QCT under LP pressure:");
    println!("  DT      {dt:8.2} ms   (buffer choked by LP queues)");
    println!("  Occamy  {occamy:8.2} ms   ({expelled} LP packets expelled)");
    println!("  Pushout {pushout:8.2} ms   (idealized preemption)");
    println!(
        "\nOccamy improves HP QCT by {:.0}% over DT (paper Fig. 15: DT \
         degrades up to ~6.6x while Occamy matches Pushout).",
        (1.0 - occamy / dt) * 100.0
    );
}
