//! Burst absorption (paper Fig. 12): how large a line-rate burst can the
//! switch absorb without loss?
//!
//! A long-lived stream entrenches one queue; a line-rate burst then hits
//! another. The experiment finds, by bisection, the largest lossless
//! burst for DT and Occamy at several α values.
//!
//! Run with: `cargo run --release --example burst_absorption`

use occamy::sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy::sim::{CbrDesc, SimConfig, MS, US};
use occamy_core::BmKind;

const G10: u64 = 10_000_000_000;
const G100: u64 = 100_000_000_000;
const BUFFER: u64 = 1_200_000;

/// Loss rate of a `burst_bytes` burst against an entrenched queue.
fn burst_loss(kind: BmKind, alpha: f64, burst_bytes: u64) -> f64 {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G100, G100, G10, G10],
        prop_ps: US,
        buffer_bytes: BUFFER,
        classes: 1,
        bm: BmSpec::uniform(kind, alpha),
        sched: SchedKind::Fifo,
        sim: SimConfig::default(),
    });
    w.add_cbr(CbrDesc {
        host: 0,
        dst: 2,
        rate_bps: 20_000_000_000,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 0,
        stop_ps: 10 * MS,
        budget_bytes: None,
    });
    let burst = w.add_cbr(CbrDesc {
        host: 1,
        dst: 3,
        rate_bps: G100,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 3 * MS,
        stop_ps: 10 * MS,
        budget_bytes: Some(burst_bytes),
    });
    w.run_to_completion(12 * MS);
    w.metrics.cbr[burst].loss_rate()
}

/// Largest lossless burst, found by bisection over [lo, hi] bytes.
fn max_lossless(kind: BmKind, alpha: f64) -> u64 {
    let (mut lo, mut hi) = (50_000u64, BUFFER);
    while hi - lo > 10_000 {
        let mid = (lo + hi) / 2;
        if burst_loss(kind, alpha, mid) < 0.001 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    println!("largest lossless line-rate burst (1.2 MB shared buffer):\n");
    println!("{:>8} {:>12} {:>12} {:>8}", "alpha", "DT", "Occamy", "gain");
    for alpha in [1.0, 2.0, 4.0] {
        let dt = max_lossless(BmKind::Dt, alpha);
        let oc = max_lossless(BmKind::Occamy, alpha);
        println!(
            "{:>8} {:>9} KB {:>9} KB {:>7.0}%",
            alpha,
            dt / 1_000,
            oc / 1_000,
            (oc as f64 / dt as f64 - 1.0) * 100.0
        );
    }
    println!(
        "\nPaper Fig. 12: Occamy absorbs ~57% more than DT at α = 4, and \
         Occamy's absorption *grows* with α while DT's shrinks."
    );
}
