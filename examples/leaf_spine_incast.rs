//! A leaf-spine datacenter running incast queries over web-search
//! background traffic — the paper's §6.4 environment in miniature.
//!
//! Builds a 32-host fabric with ECMP, injects a 60%-loaded web-search
//! background plus Poisson incast queries, and compares query-completion
//! slowdowns across all four evaluated BM schemes.
//!
//! Run with: `cargo run --release --example leaf_spine_incast`

use occamy::sim::topology::{leaf_spine, BmSpec, LeafSpineCfg, SchedKind};
use occamy::sim::{CcAlgo, FlowDesc, SimConfig, MS, US};
use occamy::stats::{FlowClass, Summary};
use occamy::traffic::{web_search, BackgroundWorkload, QueryWorkload, TrafficClass};
use occamy_core::BmKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(kind: BmKind, alpha: f64) -> (Summary, Summary, u64) {
    let sim = SimConfig {
        ecn_k_bytes: 180_000,
        min_rto: 5 * MS,
        ..SimConfig::default()
    };
    let mut world = leaf_spine(LeafSpineCfg {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 8,
        host_rate_bps: 25_000_000_000,
        fabric_rate_bps: 25_000_000_000,
        link_prop_ps: 10 * US,
        buffer_per_8ports_bytes: 1_000_000,
        classes: 1,
        bm: BmSpec::per_class(kind, vec![alpha]),
        sched: SchedKind::Fifo,
        sim,
    });
    let mut rng = StdRng::seed_from_u64(7);
    let duration = 20 * MS;

    // Web-search background at 60% load between random host pairs.
    let bg = BackgroundWorkload::new(32, 25_000_000_000, 0.6, web_search());
    for f in bg.generate(duration, &mut rng) {
        world.add_flow(FlowDesc {
            src: f.src,
            dst: f.dst,
            bytes: f.bytes,
            start_ps: f.start_ps,
            prio: 0,
            cc: CcAlgo::Dctcp,
            query: None,
            is_query: false,
        });
    }
    // Incast queries: 16-way fan-in of 400 KB, 200 queries/s/host.
    let qw = QueryWorkload::new(32, 16, 400_000, 200.0);
    for q in qw.generate(duration, &mut rng) {
        for r in &q.responses {
            world.add_flow(FlowDesc {
                src: r.src,
                dst: r.dst,
                bytes: r.bytes,
                start_ps: r.start_ps,
                prio: 0,
                cc: CcAlgo::Dctcp,
                query: r.query,
                is_query: r.class == TrafficClass::Query,
            });
        }
    }
    world.run_to_completion(duration + 150 * MS);
    let records = world.flow_records();
    // Slowdown vs an ideal 80 µs-RTT, 25 Gbps transfer.
    let ideal = |bytes: u64| 80 * US + bytes * 8 * 1_000_000 / 25_000_000;
    let qct = records.qct_slowdown(ideal);
    let bg_fct = records.slowdown(|r| r.class == FlowClass::Background, ideal);
    (qct, bg_fct, world.metrics.drops.total_losses())
}

fn main() {
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>8}",
        "scheme", "avg QCT slow", "p99 QCT slow", "bg FCT slow", "losses"
    );
    for (kind, alpha, name) in [
        (BmKind::Occamy, 8.0, "Occamy"),
        (BmKind::Abm, 2.0, "ABM"),
        (BmKind::Dt, 1.0, "DT"),
        (BmKind::Pushout, 1.0, "Pushout"),
    ] {
        let (mut qct, bg, losses) = run(kind, alpha);
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>14.2} {:>8}",
            name,
            qct.mean().unwrap_or(f64::NAN),
            qct.p99().unwrap_or(f64::NAN),
            bg.mean().unwrap_or(f64::NAN),
            losses,
        );
    }
    println!("\nExpected: Occamy tracks Pushout; DT/ABM trail (paper Fig. 17).");
}
