//! Explore the hardware side: the cell-level traffic manager and the
//! cost model behind paper Table 1.
//!
//! Demonstrates (1) that a head drop touches the PD and cell-pointer
//! memories but never the cell *data* memory — the §3.2 observation that
//! makes preemption affordable — and (2) how Occamy's selector scales
//! against the Maximum Finder that Pushout would need.
//!
//! Run with: `cargo run --release --example hardware_cost`

use occamy::hw::{cost, MaxFinder, TrafficManager};
use occamy_core::{BmKind, QueueConfig};

fn main() {
    // ---------------------------------------------------------------
    // Part 1: drive the cell-level TM and read the per-memory meters.
    // ---------------------------------------------------------------
    let cfg = QueueConfig::uniform(8, 100_000_000_000, 8.0);
    let mut tm = TrafficManager::new(10_000, 8, BmKind::Occamy.build(cfg));

    // Enqueue 1000 × 1.5 KB packets round-robin across queues.
    for i in 0..1_000u64 {
        tm.enqueue((i % 8) as usize, i, 1_500, i);
    }
    let after_write = *tm.stats();
    // Dequeue half normally, head-drop the rest.
    for i in 0..500 {
        tm.dequeue((i % 8) as usize, 2_000 + i);
    }
    let after_deq = *tm.stats();
    for i in 0..500 {
        tm.head_drop((i % 8) as usize, 3_000 + i);
    }
    let after_drop = *tm.stats();
    assert!(tm.check_invariants());

    println!("cell-data memory accesses:");
    println!("  1000 enqueues : {}", after_write.accesses.cell_data);
    println!(
        "  500 dequeues  : +{}",
        after_deq.accesses.cell_data - after_write.accesses.cell_data
    );
    println!(
        "  500 head drops: +{}  <- zero: expulsion is data-path free",
        after_drop.accesses.cell_data - after_deq.accesses.cell_data
    );

    // ---------------------------------------------------------------
    // Part 2: the Table 1 cost model and the Pushout comparison.
    // ---------------------------------------------------------------
    let total = cost::occamy_total(cost::PAPER_NUM_QUEUES, cost::PAPER_QLEN_BITS);
    println!(
        "\nOccamy additions at 64 queues: {} LUTs, {} FFs, {:.2} ns, \
         {:.4} mm2, {:.2} mW",
        total.luts, total.flip_flops, total.timing_ns, total.area_mm2, total.power_mw
    );

    println!("\nwhy not just track the longest queue (Pushout)?");
    for n in [64, 256, 1024] {
        let mf = MaxFinder::new(n, 20);
        println!(
            "  {n:>5} queues: comparator tree of {} levels, {:.2} ns \
             ({}1 GHz single-cycle)",
            mf.levels(),
            mf.delay_ps() as f64 / 1_000.0,
            if mf.meets_cycle(1_000) {
                "meets "
            } else {
                "misses "
            },
        );
    }

    // Sanity: the tree computes the same answer as a software argmax.
    let mf = MaxFinder::new(64, 20);
    let lens: Vec<u64> = (0..64).map(|i| (i * 37) % 1_000).collect();
    let (idx, val) = mf.find(&lens).unwrap();
    println!("\nmax finder check: longest queue = {idx} ({val} cells)");
}
