//! Occamy — a reproduction of *"Occamy: A Preemptive Buffer Management for
//! On-chip Shared-memory Switches"* (EuroSys 2025) in Rust.
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! - [`core`] — the BM algorithms (DT, Occamy, ABM, Pushout, …) and
//!   shared-buffer accounting.
//! - [`hw`] — the cell-level traffic-manager model, head-drop circuits and
//!   the hardware cost model (paper Table 1).
//! - [`sim`] — the discrete-event network simulator (links, shared-memory
//!   switches, DCTCP/CUBIC hosts, leaf-spine topologies).
//! - [`traffic`] — workload generators (web-search CDF, incast queries,
//!   all-to-all, permutation, all-reduce double binary trees).
//! - [`spec`] — declarative TOML/JSON scenario descriptions (parsed,
//!   validated and re-emittable; `occamy-bench run --spec` compiles them
//!   into experiment grids).
//! - [`stats`] — FCT/QCT metrics, percentiles, CDFs and table output.
//!
//! # Example
//!
//! ```
//! use occamy::core::{BufferManager, BufferState, Occamy, QueueConfig, Verdict};
//!
//! let mut bm = Occamy::new(QueueConfig::uniform(8, 10_000_000_000, 8.0));
//! let mut state = BufferState::new(410_000, 8);
//! assert_eq!(bm.admit(0, 1_500, &state), Verdict::Accept);
//! state.enqueue(0, 1_500).unwrap();
//! assert_eq!(bm.select_victim(&state), None);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/occamy-bench` for
//! the per-figure experiment harness.

pub use occamy_core as core;
pub use occamy_hw as hw;
pub use occamy_sim as sim;
pub use occamy_spec as spec;
pub use occamy_stats as stats;
pub use occamy_traffic as traffic;
