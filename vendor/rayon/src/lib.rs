//! Offline stand-in for the subset of [`rayon`](https://docs.rs/rayon)
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the one pattern the experiment runner needs —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — behind the same paths
//! as the real crate. Swapping back to upstream `rayon` is a one-line
//! change in `Cargo.toml`.
//!
//! Implementation: a scoped thread pool with an atomic work cursor, so
//! long-running items (whole simulation runs, here) are balanced across
//! threads dynamically rather than pre-chunked. Results come back in
//! input order, like upstream. Thread count follows
//! `RAYON_NUM_THREADS` when set, else `std::thread::available_parallelism`.
//!
//! Differences from upstream worth knowing: only `par_iter` on slices and
//! `Vec`, only `map` + `collect`, and no global pool reuse — each
//! `collect` spins up its own scoped threads. For items that each take
//! milliseconds or more (our use case) the overhead is negligible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for parallel execution.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A pending parallel map over a slice.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

/// The parallel view of a slice, produced by
/// [`IntoParallelRefIterator::par_iter`].
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Applies `f` to every element in parallel, preserving input order.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of items behind this iterator.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Runs the map and gathers results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Maps `f` over `items` on a scoped thread pool, returning results in
/// input order.
fn run_ordered<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped an item")
        })
        .collect()
}

/// Types convertible into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The element type handed to closures.
    type Item: 'data;

    /// Creates the parallel view.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Everything a caller needs: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let input: Vec<u64> = (0..1_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u64];
        let out: Vec<u64> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        // With more items than threads, at least two distinct thread ids
        // should appear (unless the host has a single core).
        if super::current_num_threads() < 2 {
            return;
        }
        let items: Vec<u64> = (0..64).collect();
        let ids: Vec<String> = items
            .par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                format!("{:?}", std::thread::current().id())
            })
            .collect();
        let mut unique = ids.clone();
        unique.sort();
        unique.dedup();
        assert!(unique.len() >= 2, "all work ran on one thread");
    }

    #[test]
    fn work_is_balanced_dynamically() {
        // One expensive item must not serialize the rest behind it: the
        // cursor hands indices out one at a time.
        let items: Vec<u64> = (0..32).collect();
        let sums: Vec<u64> = items
            .par_iter()
            .map(|&x| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                x
            })
            .collect();
        assert_eq!(sums.iter().sum::<u64>(), (0..32).sum());
    }
}
