//! Offline stand-in for the subset of [`proptest`](https://docs.rs/proptest)
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature property-testing harness behind the same paths as
//! the real crate: the [`proptest!`] macro, [`prop_assert!`] /
//! [`prop_assert_eq!`], and the strategies the test suites rely on
//! (integer / float ranges, `prop::bool::ANY`, tuples, and
//! `prop::collection::vec`). Swapping back to upstream `proptest` is a
//! one-line change in each `Cargo.toml`.
//!
//! Differences from upstream worth knowing:
//!
//! - No shrinking. A failing case reports the case number and the
//!   deterministic per-test seed so it can be replayed, but the input is
//!   not minimized.
//! - Cases are generated from a seed derived from the test name, so runs
//!   are fully deterministic; set `PROPTEST_CASES` to change the case
//!   count (default 64).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------

/// Failure raised by `prop_assert!` and friends.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG driving input generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Runs `f` for [`case_count`] deterministic cases; panics on the first
/// failing case with its case index and seed.
pub fn run_proptest<F>(name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let cases = case_count();
    let base = fnv1a(name);
    for case in 0..cases {
        let seed = base ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = TestRng::new(seed);
        if let Err(e) = f(&mut rng) {
            panic!("property '{name}' failed at case {case}/{cases} (seed {seed:#018x}): {e}");
        }
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A generator of test-case inputs.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy (`prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Element-count specification for [`vec`]: an exact count or a
        /// half-open range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// A `Vec` strategy: `size` elements, each drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length is drawn from `size` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.hi - self.size.lo;
                let n = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(stringify!($name), |proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), proptest_rng);)+
                    let case = move || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    };
                    case()
                });
            }
        )*
    };
}

/// Fails the current case (with an optional formatted message) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy, TestCaseError,
        TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 3u64..17, b in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Vec strategies respect exact and ranged sizes.
        #[test]
        fn vec_sizes(exact in prop::collection::vec(0u8..10, 4),
                     ranged in prop::collection::vec(prop::bool::ANY, 1..9)) {
            prop_assert_eq!(exact.len(), 4);
            prop_assert!((1..9).contains(&ranged.len()));
        }

        /// Tuple strategies compose; early `return Ok(())` works.
        #[test]
        fn tuples_and_early_return(pair in (0usize..4, 1u64..100)) {
            let (q, len) = pair;
            if q == 0 {
                return Ok(());
            }
            prop_assert!(q < 4 && len >= 1);
        }
    }

    #[test]
    fn failures_report_case_and_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::run_proptest("always_fails", |_| Err(crate::TestCaseError::fail("boom")));
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("seed"), "{msg}");
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..1_000, 1..50);
        let mut r1 = crate::TestRng::new(9);
        let mut r2 = crate::TestRng::new(9);
        for _ in 0..20 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}
