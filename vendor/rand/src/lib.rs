//! Offline stand-in for the subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few entry points it needs — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`] — behind the
//! same paths as the real crate. Swapping back to upstream `rand` is a
//! one-line change in each `Cargo.toml`.
//!
//! Differences from upstream worth knowing:
//!
//! - `StdRng` is xoshiro256** seeded via SplitMix64, not ChaCha12. It is
//!   deterministic for a given seed (all the workspace relies on) but
//!   produces a *different* stream than upstream `StdRng`, and it is not
//!   cryptographically secure.
//! - Integer `gen_range` uses modulo reduction; the bias is far below
//!   what any statistical tolerance in this repository can observe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), then affine map.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open range `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample from an empty range");
        T::sample_range(range.start, range.end, self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample_range(0.0, 1.0, self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    ///
    /// Unlike upstream (ChaCha12), this is a small-state statistical PRNG;
    /// see the crate docs for the compatibility notes.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn uniform_f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_int_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5u64..5);
    }
}
