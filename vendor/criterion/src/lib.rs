//! Offline stand-in for the subset of [`criterion`](https://docs.rs/criterion)
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature wall-clock benchmark harness behind the same paths
//! as the real crate: [`Criterion`], [`BenchmarkId`], benchmark groups and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Swapping back to
//! upstream `criterion` is a one-line change in `Cargo.toml`.
//!
//! Differences from upstream worth knowing:
//!
//! - Measurements are simple means over timed batches — no outlier
//!   rejection, regression, HTML reports or comparison against saved
//!   baselines. Treat the numbers as indicative, not publication-grade.
//! - `sample_size` and `measurement_time` are honored as the batch count
//!   and the total time budget per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    sample_size: usize,
    measurement_time: Duration,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean_ns: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Runs `f` repeatedly and records the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in ~1/sample_size of the
        // measurement budget?
        let probe_start = Instant::now();
        std::hint::black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (self.measurement_time.as_nanos() / (self.sample_size as u128) / probe.as_nanos())
                .clamp(1, 100_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iters += per_batch;
            if total >= self.measurement_time {
                break;
            }
        }
        *self.result = Some(Sample {
            mean_ns: total.as_nanos() as f64 / iters as f64,
            iters,
        });
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the config's sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the config's measurement time for this group.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&self, id: BenchmarkId, body: impl FnOnce(&mut Bencher<'_>)) {
        let mut result = None;
        let mut bencher = Bencher {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            measurement_time: self.criterion.measurement_time,
            result: &mut result,
        };
        body(&mut bencher);
        match result {
            Some(s) => println!(
                "{}/{}: {} ns/iter ({} iterations)",
                self.name,
                id.label,
                format_ns(s.mean_ns),
                s.iters
            ),
            None => println!("{}/{}: no measurement recorded", self.name, id.label),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut f = f;
        self.run(id.into(), |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut f = f;
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e7 {
        format!("{:.0}", ns)
    } else if ns >= 100.0 {
        format!("{:.1}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Benchmark configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
        }
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions with a shared [`Criterion`] config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_sample() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0, "benchmark body never ran");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("inputs");
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter("vec3"), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 64).label, "f/64");
        assert_eq!(BenchmarkId::from_parameter("DT").label, "DT");
    }
}
