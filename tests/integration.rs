//! Cross-crate integration tests: workloads from `occamy-traffic` driving
//! `occamy-sim` worlds managed by `occamy-core` schemes, measured with
//! `occamy-stats` — the full pipeline every experiment binary uses.

use occamy::core::{BmKind, BufferManager, Occamy, QueueConfig, Verdict};
use occamy::hw::TrafficManager;
use occamy::sim::topology::{
    leaf_spine, single_switch, BmSpec, LeafSpineCfg, SchedKind, SingleSwitchCfg,
};
use occamy::sim::{CcAlgo, FlowDesc, SimConfig, MS, SEC, US};
use occamy::stats::FlowClass;
use occamy::traffic::{web_search, BackgroundWorkload, QueryWorkload, TrafficClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

const G25: u64 = 25_000_000_000;

fn scaled_leaf_spine(kind: BmKind, alpha: f64) -> occamy::sim::World {
    leaf_spine(LeafSpineCfg {
        spines: 2,
        leaves: 2,
        hosts_per_leaf: 4,
        host_rate_bps: G25,
        fabric_rate_bps: G25,
        link_prop_ps: 10 * US,
        buffer_per_8ports_bytes: 1_000_000,
        classes: 1,
        bm: BmSpec::per_class(kind, vec![alpha]),
        sched: SchedKind::Fifo,
        sim: SimConfig {
            ecn_k_bytes: 180_000,
            min_rto: 5 * MS,
            ..SimConfig::default()
        },
    })
}

#[test]
fn web_search_workload_completes_on_leaf_spine() {
    let mut w = scaled_leaf_spine(BmKind::Dt, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    let wl = BackgroundWorkload::new(8, G25, 0.4, web_search());
    let flows = wl.generate(5 * MS, &mut rng);
    assert!(!flows.is_empty());
    for f in &flows {
        w.add_flow(FlowDesc {
            src: f.src,
            dst: f.dst,
            bytes: f.bytes,
            start_ps: f.start_ps,
            prio: 0,
            cc: CcAlgo::Dctcp,
            query: None,
            is_query: false,
        });
    }
    w.run_to_completion(3 * SEC);
    assert!(
        w.all_flows_done(),
        "{} of {} web-search flows unfinished",
        w.flow_records().unfinished(),
        flows.len()
    );
}

#[test]
fn query_workload_produces_qcts() {
    let mut w = scaled_leaf_spine(BmKind::Occamy, 8.0);
    let mut rng = StdRng::seed_from_u64(5);
    let qw = QueryWorkload::new(8, 4, 200_000, 500.0);
    let queries = qw.generate(10 * MS, &mut rng);
    assert!(queries.len() >= 10, "only {} queries", queries.len());
    for q in &queries {
        for r in &q.responses {
            w.add_flow(FlowDesc {
                src: r.src,
                dst: r.dst,
                bytes: r.bytes,
                start_ps: r.start_ps,
                prio: 0,
                cc: CcAlgo::Dctcp,
                query: r.query,
                is_query: r.class == TrafficClass::Query,
            });
        }
    }
    w.run_to_completion(3 * SEC);
    let records = w.flow_records();
    let qcts = records.qcts();
    assert_eq!(qcts.len(), queries.len());
    assert!(qcts.iter().all(|q| q.qct_ps().is_some()));
    // QCT must be at least the ideal transfer time of its bytes.
    for q in &qcts {
        let ideal = 80 * US + q.bytes * 8 * 1_000 / 25; // ps at 25 Gbps
        assert!(
            q.qct_ps().unwrap() >= ideal / 2,
            "query {} finished impossibly fast",
            q.query
        );
    }
}

#[test]
fn occamy_beats_dt_on_incast_over_background() {
    // The paper's core end-to-end claim, in miniature: with entrenched
    // background, Occamy completes incast queries faster than DT.
    let run = |kind: BmKind, alpha: f64| {
        let mut w = single_switch(SingleSwitchCfg {
            host_rates_bps: vec![10_000_000_000; 8],
            prop_ps: US,
            buffer_bytes: 410_000,
            classes: 1,
            bm: BmSpec::uniform(kind, alpha),
            sched: SchedKind::Fifo,
            sim: SimConfig::default(),
        });
        // Entrenched long flows into hosts 6 and 7.
        for src in 0..3 {
            for dst in [6, 7] {
                w.add_flow(FlowDesc {
                    src,
                    dst,
                    bytes: 30_000_000,
                    start_ps: 0,
                    prio: 0,
                    cc: CcAlgo::Dctcp,
                    query: None,
                    is_query: false,
                });
            }
        }
        // Degree-35 incast into host 0 at t = 10 ms.
        for s in 0..5 {
            for _ in 0..7 {
                w.add_flow(FlowDesc {
                    src: 1 + s,
                    dst: 0,
                    bytes: 14_600,
                    start_ps: 10 * MS,
                    prio: 0,
                    cc: CcAlgo::Dctcp,
                    query: Some(0),
                    is_query: true,
                });
            }
        }
        w.run_to_completion(5 * SEC);
        assert!(w.all_flows_done());
        w.flow_records().qct_ms().mean().unwrap()
    };
    let dt = run(BmKind::Dt, 1.0);
    let occamy = run(BmKind::Occamy, 8.0);
    assert!(
        occamy < dt,
        "Occamy QCT {occamy:.2} ms should beat DT {dt:.2} ms"
    );
}

#[test]
fn all_schemes_survive_identical_stress() {
    // Every built-in scheme must keep invariants and finish a hard
    // incast-over-background mix.
    for kind in [
        BmKind::Dt,
        BmKind::Occamy,
        BmKind::OccamyLongest,
        BmKind::Abm,
        BmKind::Pushout,
        BmKind::Static,
        BmKind::CompleteSharing,
    ] {
        let mut w = single_switch(SingleSwitchCfg {
            host_rates_bps: vec![10_000_000_000; 6],
            prop_ps: US,
            buffer_bytes: 200_000,
            classes: 1,
            bm: BmSpec::uniform(kind, 2.0),
            sched: SchedKind::Fifo,
            sim: SimConfig {
                min_rto: 5 * MS,
                ..SimConfig::default()
            },
        });
        for s in 0..5 {
            w.add_flow(FlowDesc {
                src: s,
                dst: 5,
                bytes: 1_000_000,
                start_ps: 0,
                prio: 0,
                cc: CcAlgo::Dctcp,
                query: None,
                is_query: false,
            });
        }
        w.run_to_completion(10 * SEC);
        assert!(w.all_flows_done(), "{kind:?} wedged the incast");
        for part in &w.switches[0].partitions {
            assert_eq!(part.state.total(), 0, "{kind:?} leaked buffer");
        }
    }
}

#[test]
fn core_scheme_drives_hw_traffic_manager() {
    // The same Occamy instance type drives both substrates; here the
    // cell-level TM processes an adversarial pattern and keeps every
    // cross-structure invariant.
    let cfg = QueueConfig::uniform(4, 10_000_000_000, 2.0);
    let mut tm = TrafficManager::new(500, 4, Occamy::new(cfg));
    let mut id = 0u64;
    for round in 0..50u64 {
        for q in 0..4 {
            for _ in 0..3 {
                tm.enqueue(q, id, 100 + (id % 1_400), round * 100);
                id += 1;
            }
        }
        // Expel while over-allocated, dequeue a little.
        while let Some(v) = tm.select_victim() {
            if tm.head_drop(v, round * 100 + 50).is_none() {
                break;
            }
        }
        tm.dequeue((round % 4) as usize, round * 100 + 80);
        assert!(tm.check_invariants(), "invariant broke at round {round}");
    }
    let st = tm.stats();
    assert!(st.enqueued_pkts > 0);
    assert!(st.head_dropped_pkts > 0, "expulsion never fired");
    assert_eq!(st.accesses.cell_data, {
        // Writes happen per enqueued cell; reads only for real dequeues.
        let written: u64 = st.enqueued_pkts; // at least one cell each
        assert!(st.accesses.cell_data >= written);
        st.accesses.cell_data
    });
}

#[test]
fn verdicts_are_consistent_across_schemes() {
    // For any state, Pushout admits whenever CompleteSharing does; DT with
    // huge α converges to CompleteSharing; Occamy admission equals DT.
    let mut state = occamy::core::BufferState::new(100_000, 4);
    state.enqueue(0, 30_000).unwrap();
    state.enqueue(1, 50_000).unwrap();
    let mk = |kind: BmKind, alpha: f64| kind.build(QueueConfig::uniform(4, 1_000, alpha));
    let cs = mk(BmKind::CompleteSharing, 1.0);
    let po = mk(BmKind::Pushout, 1.0);
    let dt_huge = mk(BmKind::Dt, 1e9);
    let dt = mk(BmKind::Dt, 1.0);
    let occ = mk(BmKind::Occamy, 1.0);
    for len in [1u64, 1_000, 10_000, 20_000, 30_000] {
        for q in 0..4 {
            let c = cs.admit(q, len, &state);
            if c == Verdict::Accept {
                assert_eq!(po.admit(q, len, &state), Verdict::Accept);
                assert_eq!(dt_huge.admit(q, len, &state), Verdict::Accept);
            }
            assert_eq!(dt.admit(q, len, &state), occ.admit(q, len, &state));
        }
    }
}

#[test]
fn flow_records_classify_by_workload() {
    let mut w = scaled_leaf_spine(BmKind::Dt, 1.0);
    w.add_flow(FlowDesc {
        src: 0,
        dst: 4,
        bytes: 10_000,
        start_ps: 0,
        prio: 0,
        cc: CcAlgo::Dctcp,
        query: None,
        is_query: false,
    });
    w.add_flow(FlowDesc {
        src: 1,
        dst: 4,
        bytes: 10_000,
        start_ps: 0,
        prio: 0,
        cc: CcAlgo::Dctcp,
        query: Some(9),
        is_query: true,
    });
    w.run_to_completion(SEC);
    let records = w.flow_records();
    let bg = records
        .records()
        .iter()
        .filter(|r| r.class == FlowClass::Background)
        .count();
    let qq = records
        .records()
        .iter()
        .filter(|r| r.class == FlowClass::Query)
        .count();
    assert_eq!((bg, qq), (1, 1));
    assert_eq!(records.qcts().len(), 1);
}
